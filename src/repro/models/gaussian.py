"""Analytic Gaussian model hierarchy.

A family of Gaussian targets ``nu_l = N(m_l, C_l)`` whose means and covariances
converge geometrically towards the finest level, mimicking the behaviour of a
discretised PDE posterior under mesh refinement.  Posterior moments are known
in closed form, which makes this hierarchy the workhorse of the test-suite
(sequential-vs-parallel consistency, unbiasedness of the telescoping sum) and
a cheap stand-in posterior for scheduler-focused scaling studies — the paper
itself notes that "the particular inverse problem does not affect the
algorithm's communication patterns and therefore parallel scalability".
"""

from __future__ import annotations

import numpy as np

from repro.core.factory import MLComponentFactory
from repro.core.problem import AbstractSamplingProblem, GaussianTargetProblem
from repro.core.proposals.base import MCMCProposal
from repro.core.proposals.random_walk import GaussianRandomWalkProposal
from repro.models.base import ForwardModelBase
from repro.multiindex import MultiIndex
from repro.utils.array_api import level_dtypes, resolve_dtype

__all__ = ["GaussianHierarchyFactory", "GaussianIdentityForwardModel"]


class GaussianIdentityForwardModel(ForwardModelBase):
    """The identity observation operator ``F(theta) = theta``.

    The analytic hierarchy's targets are Gaussian in the parameters
    themselves, so the forward map that conforms to the shared
    :class:`repro.models.base.ForwardModel` contract is the identity —
    batched evaluation is a single array copy.  Used by the conformance tests
    and anywhere a trivially cheap stand-in forward model is useful.

    With a ``float32`` solve dtype the identity rounds through single
    precision before the (double) observation boundary — the analytic model's
    version of running the forward solve at a coarse rung of the precision
    ladder.
    """

    def __init__(self, dim: int, dtype=None) -> None:
        self._dim = int(dim)
        self.dtype = resolve_dtype(dtype)

    @property
    def output_dim(self) -> int:
        return self._dim

    def forward(self, theta: np.ndarray) -> np.ndarray:
        theta = np.atleast_1d(np.asarray(theta, dtype=np.float64)).ravel()
        if theta.shape[0] != self._dim:
            raise ValueError(f"expected a parameter of dimension {self._dim}")
        return theta.astype(self.dtype).astype(np.float64)

    def forward_batch(self, thetas: np.ndarray) -> np.ndarray:
        block = np.atleast_2d(np.asarray(thetas, dtype=np.float64))
        if block.shape[1] != self._dim:
            raise ValueError(f"expected parameters of dimension {self._dim}")
        return block.astype(self.dtype).astype(np.float64)


class GaussianHierarchyFactory(MLComponentFactory):
    """Hierarchy of Gaussian targets converging to a limit distribution.

    Level ``l`` targets ``N(m_l, C_l)`` with

    ``m_l = m_inf * (1 - decay^(l+1))`` and ``C_l = C_inf * (1 + decay^(l+1))``,

    so both the mean and the covariance converge geometrically, and the
    telescoping corrections ``E[Q_l - Q_{l-1}]`` decay like ``decay^l`` — the
    variance-decay structure MLMCMC exploits.

    Parameters
    ----------
    dim:
        Parameter dimension.
    num_levels:
        Number of levels.
    limit_mean:
        The limiting mean ``m_inf`` (scalar broadcast or vector).
    limit_std:
        The limiting marginal standard deviation.
    decay:
        Geometric convergence factor in (0, 1).
    proposal_scale:
        Variance of the Gaussian random-walk proposal on every level.
    subsampling:
        Subsampling rate ``rho_l`` for coarse proposals (same on every level).
    costs:
        Nominal evaluation cost per level (defaults to ``4^l``, the scaling of
        a 2-D PDE solve under uniform refinement).
    evaluation_backend:
        Name of the :mod:`repro.evaluation` backend for every level's model
        evaluations; ``None`` keeps the in-process default.
    evaluator_options:
        Extra keyword arguments for :func:`repro.evaluation.make_evaluator`;
        instance-valued options (the caching backend's ``inner``) must be
        zero-argument callables, since each level builds a fresh backend.
    precision:
        Precision-ladder policy mapping each level's forward model to its
        solve dtype (the analytic targets themselves are exact either way).
    """

    def __init__(
        self,
        dim: int = 2,
        num_levels: int = 3,
        limit_mean: float | np.ndarray = 1.0,
        limit_std: float = 1.0,
        decay: float = 0.5,
        proposal_scale: float = 2.5,
        subsampling: int = 5,
        costs: list[float] | None = None,
        evaluation_backend: str | None = None,
        evaluator_options: dict | None = None,
        precision: str | None = None,
    ) -> None:
        if num_levels < 1:
            raise ValueError("num_levels must be at least 1")
        if not 0.0 < decay < 1.0:
            raise ValueError("decay must lie in (0, 1)")
        self.dim = int(dim)
        self._num_levels = int(num_levels)
        self.limit_mean = np.broadcast_to(
            np.atleast_1d(np.asarray(limit_mean, dtype=float)), (self.dim,)
        ).copy()
        self.limit_std = float(limit_std)
        self.decay = float(decay)
        self.proposal_scale = float(proposal_scale)
        self.subsampling = int(subsampling)
        self.costs = (
            [float(c) for c in costs]
            if costs is not None
            else [4.0**level for level in range(num_levels)]
        )
        self.evaluation_backend = evaluation_backend
        self.evaluator_options = dict(evaluator_options or {})
        self.precision = precision or "float64"
        self._level_dtypes = level_dtypes(self.precision, self._num_levels)
        self._forward_models: dict[str, GaussianIdentityForwardModel] = {}

    # ------------------------------------------------------------------
    def level_mean(self, level: int) -> np.ndarray:
        """Closed-form mean of the level-``level`` target."""
        return self.limit_mean * (1.0 - self.decay ** (level + 1))

    def level_covariance(self, level: int) -> np.ndarray:
        """Closed-form covariance of the level-``level`` target."""
        return np.eye(self.dim) * self.limit_std**2 * (1.0 + self.decay ** (level + 1))

    def exact_mean(self) -> np.ndarray:
        """Exact posterior mean of the finest level (the MLMCMC target)."""
        return self.level_mean(self._num_levels - 1)

    def exact_correction(self, level: int) -> np.ndarray:
        """Exact value of the telescoping term ``E[Q_l] - E[Q_{l-1}]`` (or ``E[Q_0]``)."""
        if level == 0:
            return self.level_mean(0)
        return self.level_mean(level) - self.level_mean(level - 1)

    # ------------------------------------------------------------------
    def forward_model(self, level: int) -> GaussianIdentityForwardModel:
        """The level's forward map under the shared ``ForwardModel`` contract.

        The analytic targets observe the parameters directly, so levels with
        the same solve dtype share one cached identity operator
        (identity-stable across calls, like the Poisson and tsunami
        factories).
        """
        dtype = self._level_dtypes[level]
        if dtype.str not in self._forward_models:
            self._forward_models[dtype.str] = GaussianIdentityForwardModel(
                self.dim, dtype=dtype
            )
        return self._forward_models[dtype.str]

    def num_levels(self) -> int:
        return self._num_levels

    def problem_for_level(self, level: int) -> AbstractSamplingProblem:
        return GaussianTargetProblem(
            self.level_mean(level),
            self.level_covariance(level),
            cost=self.costs[level],
            evaluator=self.evaluator(MultiIndex(level)),
        )

    def proposal_for_level(self, level: int, problem: AbstractSamplingProblem) -> MCMCProposal:
        return GaussianRandomWalkProposal(self.proposal_scale, dim=self.dim)

    def starting_point_for_level(self, level: int) -> np.ndarray:
        return np.zeros(self.dim)

    def subsampling_rate_for_level(self, level: int) -> int:
        return self.subsampling
