"""Model hierarchies: the Bayesian inverse problems of the paper's evaluation.

* :mod:`repro.models.base` — the shared :class:`ForwardModel` contract
  (``forward`` / ``forward_batch`` / ``output_dim``) every application's
  forward map implements; the seam the batch/pool evaluation backends plug
  into.
* :mod:`repro.models.poisson` — the single-phase subsurface-flow (Poisson)
  inverse problem with a KL-parameterised log-normal diffusion coefficient
  (Section 3.1), used for correctness checks and the scaling experiments.
* :mod:`repro.models.tsunami` — the Tohoku-like tsunami source inversion
  driven by the shallow-water solver (Section 3.2); its forward model's batch
  path is the solver's ensemble time loop.
* :mod:`repro.models.gaussian` — an analytic Gaussian hierarchy with
  closed-form posterior moments, used by the test-suite and as a cheap
  stand-in posterior for scheduler-focused experiments.
"""

from repro.models.base import ForwardModel, ForwardModelBase
from repro.models.gaussian import GaussianHierarchyFactory, GaussianIdentityForwardModel
from repro.models.poisson import (
    PoissonForwardModel,
    PoissonInverseProblemFactory,
    PoissonLevelSpec,
)
from repro.models.tsunami import (
    TsunamiForwardModel,
    TsunamiInverseProblemFactory,
    TsunamiLevelSpec,
)

__all__ = [
    "ForwardModel",
    "ForwardModelBase",
    "GaussianHierarchyFactory",
    "GaussianIdentityForwardModel",
    "PoissonForwardModel",
    "PoissonInverseProblemFactory",
    "PoissonLevelSpec",
    "TsunamiForwardModel",
    "TsunamiInverseProblemFactory",
    "TsunamiLevelSpec",
]
