"""Model hierarchies: the Bayesian inverse problems of the paper's evaluation.

* :mod:`repro.models.poisson` — the single-phase subsurface-flow (Poisson)
  inverse problem with a KL-parameterised log-normal diffusion coefficient
  (Section 3.1), used for correctness checks and the scaling experiments.
* :mod:`repro.models.tsunami` — the Tohoku-like tsunami source inversion
  driven by the shallow-water solver (Section 3.2).
* :mod:`repro.models.gaussian` — an analytic Gaussian hierarchy with
  closed-form posterior moments, used by the test-suite and as a cheap
  stand-in posterior for scheduler-focused experiments.
"""

from repro.models.gaussian import GaussianHierarchyFactory
from repro.models.poisson import PoissonInverseProblemFactory, PoissonLevelSpec
from repro.models.tsunami import TsunamiInverseProblemFactory, TsunamiLevelSpec

__all__ = [
    "GaussianHierarchyFactory",
    "PoissonInverseProblemFactory",
    "PoissonLevelSpec",
    "TsunamiInverseProblemFactory",
    "TsunamiLevelSpec",
]
