"""Streaming statistics and MCMC diagnostics.

Provides the numerical kernels behind sample collections and the multilevel
estimator:

* :class:`RunningMoments` — Welford/Chan online mean & covariance updates,
  mergeable across parallel collectors.
* :class:`WeightedRunningMoments` — the weighted variant used when samples
  carry multiplicities (e.g. rejected MCMC proposals repeat the previous
  state).
* :func:`autocorrelation`, :func:`integrated_autocorrelation_time`,
  :func:`effective_sample_size` — standard chain diagnostics (Sokal-style
  adaptive windowing).
* :func:`batch_means_variance` — estimator variance via non-overlapping batch
  means, robust for correlated samples.
"""

from __future__ import annotations

import math
from typing import Iterable

import numpy as np

__all__ = [
    "RunningMoments",
    "WeightedRunningMoments",
    "autocorrelation",
    "integrated_autocorrelation_time",
    "effective_sample_size",
    "batch_means_variance",
]


class RunningMoments:
    """Online mean/variance/covariance accumulator (Welford's algorithm).

    Supports vector-valued samples, merging of independently accumulated
    instances (parallel collectors), and exact results identical to the
    two-pass formulas up to floating point round-off.

    Parameters
    ----------
    dim:
        Dimension of the samples.  If ``None`` it is inferred from the first
        :meth:`push`.
    track_covariance:
        If True, the full sample covariance matrix is accumulated (O(dim^2)
        memory); otherwise only per-component variances.
    """

    def __init__(self, dim: int | None = None, track_covariance: bool = False) -> None:
        self._dim = dim
        self._track_cov = track_covariance
        self._count = 0
        self._mean: np.ndarray | None = None
        self._m2: np.ndarray | None = None
        self._cov_m2: np.ndarray | None = None
        if dim is not None:
            self._allocate(dim)

    def _allocate(self, dim: int) -> None:
        self._dim = dim
        self._mean = np.zeros(dim)
        self._m2 = np.zeros(dim)
        if self._track_cov:
            self._cov_m2 = np.zeros((dim, dim))

    # ------------------------------------------------------------------
    @property
    def count(self) -> int:
        """Number of samples accumulated so far."""
        return self._count

    @property
    def dim(self) -> int | None:
        """Sample dimension (``None`` until the first push)."""
        return self._dim

    def push(self, sample: np.ndarray | float) -> None:
        """Accumulate one sample."""
        x = np.atleast_1d(np.asarray(sample, dtype=float)).ravel()
        if self._mean is None:
            self._allocate(x.shape[0])
        if x.shape[0] != self._dim:
            raise ValueError(f"expected dimension {self._dim}, got {x.shape[0]}")
        self._count += 1
        delta = x - self._mean
        self._mean += delta / self._count
        delta2 = x - self._mean
        self._m2 += delta * delta2
        if self._track_cov:
            self._cov_m2 += np.outer(delta, delta2)

    def extend(self, samples: Iterable[np.ndarray]) -> None:
        """Accumulate an iterable of samples."""
        for sample in samples:
            self.push(sample)

    def merge(self, other: "RunningMoments") -> "RunningMoments":
        """Merge another accumulator into this one (Chan et al. formula)."""
        if other._count == 0:
            return self
        if self._count == 0:
            self._dim = other._dim
            self._track_cov = self._track_cov or other._track_cov
            self._count = other._count
            self._mean = None if other._mean is None else other._mean.copy()
            self._m2 = None if other._m2 is None else other._m2.copy()
            self._cov_m2 = None if other._cov_m2 is None else other._cov_m2.copy()
            return self
        if self._dim != other._dim:
            raise ValueError("cannot merge accumulators of different dimension")
        n_a, n_b = self._count, other._count
        n = n_a + n_b
        delta = other._mean - self._mean
        mean = self._mean + delta * (n_b / n)
        m2 = self._m2 + other._m2 + delta**2 * (n_a * n_b / n)
        if self._track_cov and other._cov_m2 is not None and self._cov_m2 is not None:
            self._cov_m2 = (
                self._cov_m2 + other._cov_m2 + np.outer(delta, delta) * (n_a * n_b / n)
            )
        self._count, self._mean, self._m2 = n, mean, m2
        return self

    # ------------------------------------------------------------------
    def mean(self) -> np.ndarray:
        """Sample mean (zeros if empty)."""
        if self._mean is None:
            return np.zeros(0)
        return self._mean.copy()

    def variance(self, ddof: int = 1) -> np.ndarray:
        """Per-component sample variance."""
        if self._m2 is None or self._count <= ddof:
            return np.zeros(self._dim or 0)
        return self._m2 / (self._count - ddof)

    def std(self, ddof: int = 1) -> np.ndarray:
        """Per-component sample standard deviation."""
        return np.sqrt(self.variance(ddof=ddof))

    def covariance(self, ddof: int = 1) -> np.ndarray:
        """Full sample covariance (requires ``track_covariance=True``)."""
        if not self._track_cov:
            raise RuntimeError("covariance tracking was not enabled")
        if self._cov_m2 is None or self._count <= ddof:
            return np.zeros((self._dim or 0, self._dim or 0))
        return self._cov_m2 / (self._count - ddof)

    def standard_error(self) -> np.ndarray:
        """Naive (uncorrelated-sample) standard error of the mean."""
        if self._count == 0:
            return np.zeros(self._dim or 0)
        return self.std() / math.sqrt(self._count)


class WeightedRunningMoments:
    """Weighted online mean/variance accumulator.

    Used when samples carry integer multiplicities (repeated MCMC states) or
    real weights (importance corrections).  Reports both the weighted mean and
    the reliability-weighted variance.
    """

    def __init__(self, dim: int | None = None) -> None:
        self._dim = dim
        self._wsum = 0.0
        self._wsum2 = 0.0
        self._mean: np.ndarray | None = None
        self._m2: np.ndarray | None = None
        if dim is not None:
            self._mean = np.zeros(dim)
            self._m2 = np.zeros(dim)

    @property
    def weight_sum(self) -> float:
        """Total accumulated weight."""
        return self._wsum

    def push(self, sample: np.ndarray | float, weight: float = 1.0) -> None:
        """Accumulate one sample with the given non-negative weight."""
        if weight < 0:
            raise ValueError("weights must be non-negative")
        if weight == 0:
            return
        x = np.atleast_1d(np.asarray(sample, dtype=float)).ravel()
        if self._mean is None:
            self._dim = x.shape[0]
            self._mean = np.zeros(self._dim)
            self._m2 = np.zeros(self._dim)
        self._wsum += weight
        self._wsum2 += weight * weight
        delta = x - self._mean
        r = weight / self._wsum
        self._mean += delta * r
        self._m2 += weight * delta * (x - self._mean)

    def merge(self, other: "WeightedRunningMoments") -> "WeightedRunningMoments":
        """Merge another accumulator into this one (weighted Chan formula)."""
        if other._wsum == 0:
            return self
        if self._wsum == 0:
            self._dim = other._dim
            self._wsum = other._wsum
            self._wsum2 = other._wsum2
            self._mean = None if other._mean is None else other._mean.copy()
            self._m2 = None if other._m2 is None else other._m2.copy()
            return self
        if self._dim != other._dim:
            raise ValueError("cannot merge accumulators of different dimension")
        w_a, w_b = self._wsum, other._wsum
        w = w_a + w_b
        delta = other._mean - self._mean
        self._mean = self._mean + delta * (w_b / w)
        self._m2 = self._m2 + other._m2 + delta**2 * (w_a * w_b / w)
        self._wsum = w
        self._wsum2 += other._wsum2
        return self

    def mean(self) -> np.ndarray:
        """Weighted mean."""
        if self._mean is None:
            return np.zeros(0)
        return self._mean.copy()

    def variance(self) -> np.ndarray:
        """Reliability-weighted sample variance."""
        if self._m2 is None or self._wsum == 0:
            return np.zeros(self._dim or 0)
        denom = self._wsum - self._wsum2 / self._wsum
        if denom <= 0:
            return np.zeros(self._dim or 0)
        return self._m2 / denom

    def frequency_variance(self, ddof: int = 1) -> np.ndarray:
        """Sample variance under *frequency* weights (denominator ``W - ddof``).

        For integer multiplicities (repeated MCMC states) this matches
        ``np.var(expanded_rows, ddof=ddof)`` up to round-off, which is the
        semantics sample collections report; :meth:`variance` is the
        reliability-weighted variant for non-integer weights.
        """
        if self._m2 is None or self._wsum <= ddof:
            return np.zeros(self._dim or 0)
        return self._m2 / (self._wsum - ddof)


def autocorrelation(series: np.ndarray, max_lag: int | None = None) -> np.ndarray:
    """Normalised autocorrelation function of a 1-D series via FFT.

    Parameters
    ----------
    series:
        One-dimensional array of chain values.
    max_lag:
        Largest lag to return (defaults to ``len(series) - 1``).

    Returns
    -------
    numpy.ndarray
        ``rho[k]`` for ``k = 0 .. max_lag`` with ``rho[0] == 1``.
    """
    x = np.asarray(series, dtype=float).ravel()
    n = x.shape[0]
    if n < 2:
        return np.ones(1)
    if max_lag is None:
        max_lag = n - 1
    max_lag = min(max_lag, n - 1)
    x = x - x.mean()
    # Zero-pad to the next power of two for FFT efficiency.
    nfft = 1 << (2 * n - 1).bit_length()
    fx = np.fft.rfft(x, nfft)
    acov = np.fft.irfft(fx * np.conj(fx), nfft)[: max_lag + 1].real
    acov /= n
    if acov[0] <= 0:
        return np.concatenate([[1.0], np.zeros(max_lag)])
    return acov / acov[0]


def integrated_autocorrelation_time(
    series: np.ndarray, window_factor: float = 5.0, max_lag: int | None = None
) -> float:
    """Integrated autocorrelation time with Sokal's adaptive window.

    ``tau = 1 + 2 * sum_k rho(k)`` where the sum is truncated at the smallest
    ``M`` such that ``M >= window_factor * tau(M)``.  For i.i.d. samples this
    returns approximately 1.
    """
    x = np.asarray(series, dtype=float).ravel()
    n = x.shape[0]
    if n < 4 or np.allclose(x, x[0]):
        return 1.0
    rho = autocorrelation(x, max_lag=max_lag)
    tau = 1.0
    for m in range(1, len(rho)):
        tau += 2.0 * rho[m]
        if m >= window_factor * tau:
            break
    return float(max(tau, 1.0))


def effective_sample_size(series: np.ndarray) -> float:
    """Effective sample size ``N / tau`` of a (possibly multivariate) chain.

    For multivariate input the minimum component-wise ESS is returned, which
    is the conservative choice used when sizing multilevel sample counts.
    """
    x = np.asarray(series, dtype=float)
    if x.ndim == 1:
        x = x[:, None]
    n = x.shape[0]
    if n == 0:
        return 0.0
    ess = []
    for j in range(x.shape[1]):
        tau = integrated_autocorrelation_time(x[:, j])
        ess.append(n / tau)
    return float(min(ess))


def batch_means_variance(series: np.ndarray, num_batches: int = 20) -> float:
    """Variance of the sample mean estimated by non-overlapping batch means.

    Robust to autocorrelation; used for reporting Monte Carlo errors of
    per-level correction terms.
    """
    x = np.asarray(series, dtype=float).ravel()
    n = x.shape[0]
    if n < 2:
        return 0.0
    num_batches = max(2, min(num_batches, n // 2)) if n >= 4 else 2
    batch_size = n // num_batches
    if batch_size < 1:
        return float(np.var(x, ddof=1) / n)
    trimmed = x[: batch_size * num_batches].reshape(num_batches, batch_size)
    batch_means = trimmed.mean(axis=1)
    return float(np.var(batch_means, ddof=1) / num_batches)
