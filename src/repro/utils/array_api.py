"""Array-API namespace resolution and the mixed-precision level ladder.

The ensemble kernels (:mod:`repro.swe.fv2d`, :mod:`repro.fem.assembly`) are
written against a namespace object ``xp`` instead of a hard ``import numpy``:
every array operation is spelled ``xp.add(a, b, out=c)``-style, so the same
kernel source runs on any backend whose module exposes the NumPy ufunc
surface.  NumPy is the default and the only backend guaranteed present; CuPy
is a drop-in replacement when installed (same ufunc signatures, same ``out=``
semantics), and PyTorch is accepted best-effort through its ``torch.*``
function namespace.  Neither optional backend is imported at module load —
:func:`resolve_backend` imports lazily and raises a helpful error when the
requested backend is not installed, so the import graph stays NumPy-only on
machines without accelerators.

Two resolution paths exist:

* :func:`array_namespace` — infer ``xp`` from the arrays flowing through a
  kernel (the array-API ``__array_namespace__`` protocol first, module origin
  second, NumPy as the fallback for plain Python sequences).
* :func:`resolve_backend` — map an explicit option string (``"numpy"``,
  ``"cupy"``, ``"torch"``) to its namespace, for call sites configured by
  name rather than by the data they receive.

The second half of the module is the *precision ladder* used by
``ExperimentSpec.precision``: a named policy mapping each level of a model
hierarchy to the dtype its forward solves run in.  ``float32-coarse`` — the
policy the paper's cost argument motivates — solves every level below the
finest in single precision and keeps the finest in double: MLMCMC only needs
coarse chains to be *correlated* with the fine chain, and the telescoping
correction ``E[Q_l - Q_{l-1}]`` absorbs the coarse discretisation *and*
round-off bias alike.  Observables are always promoted back to ``float64``
at the observation boundary so likelihoods stay double regardless of ladder.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "KNOWN_BACKENDS",
    "PRECISION_LADDERS",
    "array_namespace",
    "backend_available",
    "backend_name",
    "level_dtype",
    "level_dtypes",
    "resolve_backend",
    "resolve_dtype",
]

#: backend option strings understood by :func:`resolve_backend`
KNOWN_BACKENDS = ("numpy", "cupy", "torch")

#: precision-ladder policies understood by :func:`level_dtypes`:
#: ``float64`` solves every level in double (the seed behaviour),
#: ``float32-coarse`` solves all but the finest level in single precision,
#: ``float32`` solves every level in single precision.
PRECISION_LADDERS = ("float64", "float32-coarse", "float32")


# ---------------------------------------------------------------------------
# namespace resolution
def resolve_backend(name: str | None):
    """The array namespace for an explicit backend option string.

    ``None`` and ``"numpy"`` return NumPy; ``"cupy"`` and ``"torch"`` are
    imported lazily and raise ``ImportError`` with an actionable message when
    the package is not installed (nothing in this repository installs them —
    they are opt-in accelerator backends).
    """
    if name is None or name == "numpy":
        return np
    if name not in KNOWN_BACKENDS:
        raise ValueError(
            f"unknown array backend {name!r}; known backends: {', '.join(KNOWN_BACKENDS)}"
        )
    try:
        return __import__(name)
    except ImportError as error:
        raise ImportError(
            f"array backend {name!r} requested but the {name!r} package is not "
            f"installed; install it or use backend='numpy'"
        ) from error


def backend_available(name: str) -> bool:
    """Whether :func:`resolve_backend` would succeed for ``name``."""
    try:
        resolve_backend(name)
    except ImportError:
        return False
    return True


def array_namespace(*arrays):
    """Infer the ``xp`` namespace from the arrays a kernel received.

    Resolution order per array: the array-API standard's
    ``__array_namespace__`` hook, then the defining module's top-level package
    (which maps ``cupy.ndarray`` to ``cupy`` and ``torch.Tensor`` to
    ``torch``), then NumPy for anything NumPy can coerce.  Mixing arrays from
    different backends is an error — silent device transfers are exactly the
    failure mode this helper exists to prevent.
    """
    namespaces = []
    for array in arrays:
        if array is None:
            continue
        hook = getattr(array, "__array_namespace__", None)
        if hook is not None:
            namespace = hook()
        elif isinstance(array, np.ndarray) or np.isscalar(array):
            namespace = np
        else:
            module = type(array).__module__.partition(".")[0]
            namespace = resolve_backend(module) if module in KNOWN_BACKENDS else np
        if all(namespace is not seen for seen in namespaces):
            namespaces.append(namespace)
    if not namespaces:
        return np
    if len(namespaces) > 1:
        names = sorted(backend_name(ns) for ns in namespaces)
        raise TypeError(
            f"arrays from different backends cannot be mixed: {', '.join(names)}"
        )
    return namespaces[0]


def backend_name(namespace) -> str:
    """Short name of a namespace object (``"numpy"``, ``"cupy"``, ...)."""
    name = getattr(namespace, "__name__", str(namespace))
    # numpy's array-API hook returns the main module; keep the top package name
    return name.partition(".")[0]


# ---------------------------------------------------------------------------
# dtype handling and the precision ladder
def resolve_dtype(dtype) -> np.dtype:
    """Canonicalise a dtype spec (``None`` means double precision).

    Only the two IEEE float dtypes the ladder uses are accepted: the kernels'
    dry-state logic and the observation-boundary promotion are validated for
    these and nothing else.
    """
    resolved = np.dtype(np.float64 if dtype is None else dtype)
    if resolved not in (np.dtype(np.float32), np.dtype(np.float64)):
        raise ValueError(
            f"unsupported kernel dtype {resolved}; use float32 or float64"
        )
    return resolved


def level_dtypes(precision: str | None, num_levels: int) -> list[np.dtype]:
    """Per-level solve dtypes (coarse to fine) for a precision-ladder policy."""
    policy = precision or "float64"
    if policy not in PRECISION_LADDERS:
        raise ValueError(
            f"unknown precision ladder {policy!r}; "
            f"known ladders: {', '.join(PRECISION_LADDERS)}"
        )
    if num_levels < 1:
        raise ValueError("a hierarchy needs at least one level")
    if policy == "float64":
        return [np.dtype(np.float64)] * num_levels
    if policy == "float32":
        return [np.dtype(np.float32)] * num_levels
    return [np.dtype(np.float32)] * (num_levels - 1) + [np.dtype(np.float64)]


def level_dtype(precision: str | None, level: int, num_levels: int) -> np.dtype:
    """The solve dtype of one level under a precision-ladder policy."""
    if not 0 <= level < num_levels:
        raise ValueError(f"level {level} outside hierarchy of {num_levels} levels")
    return level_dtypes(precision, num_levels)[level]
