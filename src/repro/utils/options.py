"""Hierarchical option handling.

MUQ configures its MCMC stack through ``boost::property_tree`` dictionaries.
:class:`Options` provides the Python analogue: a thin, dot-accessible mapping
with defaulting, nesting, validation helpers and deep-merge semantics.  Every
algorithm in :mod:`repro` accepts either a plain ``dict`` or an
:class:`Options` instance.
"""

from __future__ import annotations

import copy
from collections.abc import Mapping, MutableMapping
from typing import Any, Iterator


class Options(MutableMapping):
    """A nested, dot-accessible configuration mapping.

    Parameters
    ----------
    data:
        Initial key/value pairs.  Nested mappings are converted to
        :class:`Options` recursively.
    **kwargs:
        Additional key/value pairs merged on top of ``data``.

    Examples
    --------
    >>> opts = Options({"chain": {"num_samples": 100}}, burnin=10)
    >>> opts.chain.num_samples
    100
    >>> opts.get("missing", 3)
    3
    """

    def __init__(self, data: Mapping[str, Any] | None = None, **kwargs: Any) -> None:
        object.__setattr__(self, "_data", {})
        if data is not None:
            for key, value in dict(data).items():
                self[key] = value
        for key, value in kwargs.items():
            self[key] = value

    # -- mapping protocol -------------------------------------------------
    def __getitem__(self, key: str) -> Any:
        return self._data[key]

    def __setitem__(self, key: str, value: Any) -> None:
        if isinstance(value, Mapping) and not isinstance(value, Options):
            value = Options(value)
        self._data[key] = value

    def __delitem__(self, key: str) -> None:
        del self._data[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._data)

    def __len__(self) -> int:
        return len(self._data)

    # -- attribute access --------------------------------------------------
    def __getattr__(self, key: str) -> Any:
        try:
            return self._data[key]
        except KeyError as exc:  # pragma: no cover - defensive
            raise AttributeError(key) from exc

    def __setattr__(self, key: str, value: Any) -> None:
        self[key] = value

    def __repr__(self) -> str:
        return f"Options({self.to_dict()!r})"

    # -- helpers -------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Return a plain nested ``dict`` copy of the options."""
        out: dict[str, Any] = {}
        for key, value in self._data.items():
            out[key] = value.to_dict() if isinstance(value, Options) else copy.deepcopy(value)
        return out

    def copy(self) -> "Options":
        """Deep copy."""
        return Options(self.to_dict())

    def merged(self, other: Mapping[str, Any] | None = None, **kwargs: Any) -> "Options":
        """Return a new :class:`Options` with ``other`` deep-merged on top."""
        result = self.copy()
        result.update_deep(other or {})
        result.update_deep(kwargs)
        return result

    def update_deep(self, other: Mapping[str, Any]) -> None:
        """Deep-merge ``other`` into this instance in place."""
        for key, value in dict(other).items():
            if (
                key in self._data
                and isinstance(self._data[key], Options)
                and isinstance(value, Mapping)
            ):
                self._data[key].update_deep(value)
            else:
                self[key] = value

    def setdefaults(self, defaults: Mapping[str, Any]) -> "Options":
        """Fill in any missing keys (recursively) from ``defaults``; returns self."""
        for key, value in dict(defaults).items():
            if key not in self._data:
                self[key] = copy.deepcopy(value)
            elif isinstance(self._data[key], Options) and isinstance(value, Mapping):
                self._data[key].setdefaults(value)
        return self

    def require(self, *keys: str) -> None:
        """Raise ``KeyError`` listing every missing required key."""
        missing = [key for key in keys if key not in self._data]
        if missing:
            raise KeyError(f"Missing required option(s): {', '.join(missing)}")

    @staticmethod
    def coerce(value: "Options | Mapping[str, Any] | None", **defaults: Any) -> "Options":
        """Normalise a user-supplied options argument.

        Accepts ``None`` (returns defaults only), a mapping, or an existing
        :class:`Options` instance, and applies ``defaults`` for missing keys.
        """
        if value is None:
            opts = Options()
        elif isinstance(value, Options):
            opts = value.copy()
        else:
            opts = Options(value)
        if defaults:
            opts.setdefaults(defaults)
        return opts
