"""Lightweight wall-clock timers and a per-label timing registry.

The parallel layer mostly operates in *virtual* time (see
:mod:`repro.parallel.simmpi`), but forward-model cost models can be calibrated
from measured wall-clock times collected with these helpers.
"""

from __future__ import annotations

import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Timer:
    """A simple start/stop wall-clock timer accumulating total elapsed time."""

    elapsed: float = 0.0
    _started_at: float | None = field(default=None, repr=False)
    count: int = 0

    def start(self) -> "Timer":
        """Start (or restart) the timer."""
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Stop the timer and return the duration of the last interval."""
        if self._started_at is None:
            raise RuntimeError("Timer.stop() called before start()")
        interval = time.perf_counter() - self._started_at
        self.elapsed += interval
        self.count += 1
        self._started_at = None
        return interval

    @property
    def running(self) -> bool:
        """Whether the timer is currently running."""
        return self._started_at is not None

    @property
    def mean(self) -> float:
        """Mean duration per start/stop interval."""
        return self.elapsed / self.count if self.count else 0.0

    @contextmanager
    def measure(self) -> Iterator["Timer"]:
        """Context manager measuring one interval."""
        self.start()
        try:
            yield self
        finally:
            self.stop()


class TimingRegistry:
    """A registry of named timers.

    Examples
    --------
    >>> registry = TimingRegistry()
    >>> with registry.measure("model.solve"):
    ...     pass
    >>> registry.total("model.solve") >= 0.0
    True
    """

    def __init__(self) -> None:
        self._timers: dict[str, Timer] = defaultdict(Timer)

    def timer(self, label: str) -> Timer:
        """Return the timer registered under ``label`` (creating it if needed)."""
        return self._timers[label]

    @contextmanager
    def measure(self, label: str) -> Iterator[Timer]:
        """Measure one interval under ``label``."""
        with self.timer(label).measure() as t:
            yield t

    def total(self, label: str) -> float:
        """Total elapsed time accumulated under ``label``."""
        return self._timers[label].elapsed if label in self._timers else 0.0

    def mean(self, label: str) -> float:
        """Mean per-interval time under ``label``."""
        return self._timers[label].mean if label in self._timers else 0.0

    def report(self) -> dict[str, dict[str, float]]:
        """Summary dictionary ``{label: {total, count, mean}}``."""
        return {
            label: {"total": t.elapsed, "count": float(t.count), "mean": t.mean}
            for label, t in sorted(self._timers.items())
        }
