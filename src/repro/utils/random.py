"""Random number management.

Reproducible multi-component stochastic algorithms need careful stream
management: every chain, proposal, worker group and forward model should draw
from an *independent* stream, regardless of execution order.  NumPy's
``SeedSequence`` spawning provides exactly that; :class:`RandomSource` wraps it
with a small registry so components can request named child streams.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np


def spawn_rngs(seed: int | np.random.SeedSequence | None, n: int) -> list[np.random.Generator]:
    """Create ``n`` statistically independent generators from a single seed."""
    seq = seed if isinstance(seed, np.random.SeedSequence) else np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


class RandomSource:
    """A hierarchical, named source of independent random generators.

    Parameters
    ----------
    seed:
        Root seed (``None`` draws entropy from the OS).

    Examples
    --------
    >>> source = RandomSource(7)
    >>> rng_a = source.child("chain", 0)
    >>> rng_b = source.child("chain", 1)
    >>> rng_a is rng_b
    False

    Requesting the same name twice returns *new* draws from the same child
    stream object, so components can hold on to their generator.
    """

    def __init__(self, seed: int | None = None) -> None:
        self._seed_sequence = np.random.SeedSequence(seed)
        self._children: dict[tuple, np.random.Generator] = {}
        self._spawn_count = 0
        self.root = np.random.default_rng(self._seed_sequence.spawn(1)[0])

    @property
    def seed_entropy(self) -> int | Sequence[int]:
        """Entropy underlying the root seed sequence."""
        return self._seed_sequence.entropy

    def child(self, *name: object) -> np.random.Generator:
        """Return the generator registered under ``name`` (creating it once).

        The name is mapped to a spawn key through a *deterministic* hash
        (Python's built-in ``hash`` of strings is randomised per process and
        would break cross-run reproducibility).
        """
        key = tuple(name)
        if key not in self._children:
            self._spawn_count += 1
            digest = hashlib.sha256(repr(key).encode("utf-8")).digest()
            stable_hash = int.from_bytes(digest[:4], "little") & 0x7FFFFFFF
            child_seq = np.random.SeedSequence(
                entropy=self._seed_sequence.entropy,
                spawn_key=(stable_hash, self._spawn_count),
            )
            self._children[key] = np.random.default_rng(child_seq)
        return self._children[key]

    def spawn(self, n: int) -> list[np.random.Generator]:
        """Spawn ``n`` fresh anonymous independent generators."""
        children = self._seed_sequence.spawn(n)
        return [np.random.default_rng(child) for child in children]

    def integers(self, low: int, high: int | None = None) -> int:
        """Convenience wrapper over the root generator's ``integers``."""
        return int(self.root.integers(low, high))


def as_generator(rng: np.random.Generator | int | None) -> np.random.Generator:
    """Normalise ``rng`` to a :class:`numpy.random.Generator`."""
    if isinstance(rng, np.random.Generator):
        return rng
    return np.random.default_rng(rng)


def antithetic_normal(rng: np.random.Generator, size: int) -> tuple[np.ndarray, np.ndarray]:
    """Draw an antithetic pair of standard normal vectors (variance reduction)."""
    z = rng.standard_normal(size)
    return z, -z


def multivariate_normal_sample(
    rng: np.random.Generator,
    mean: np.ndarray,
    chol_cov: np.ndarray,
) -> np.ndarray:
    """Sample ``N(mean, L L^T)`` given the Cholesky factor ``L`` of the covariance."""
    mean = np.asarray(mean, dtype=float)
    z = rng.standard_normal(mean.shape[0])
    return mean + chol_cov @ z


def stratified_indices(rng: np.random.Generator, n: int, strata: int) -> np.ndarray:
    """Return ``n`` indices stratified over ``strata`` equally sized bins.

    Used by collectors when thinning stored chains for diagnostics without
    biasing towards early (burn-in adjacent) samples.
    """
    if strata <= 0:
        raise ValueError("strata must be positive")
    edges = np.linspace(0, n, strata + 1).astype(int)
    picks = []
    for lo, hi in zip(edges[:-1], edges[1:]):
        if hi > lo:
            picks.append(int(rng.integers(lo, hi)))
    return np.array(sorted(picks), dtype=int)


def choice_without_replacement(
    rng: np.random.Generator, pool: Iterable[int], k: int
) -> list[int]:
    """Sample ``k`` distinct items from ``pool`` (returns fewer if pool is small)."""
    items = list(pool)
    if k >= len(items):
        return items
    idx = rng.choice(len(items), size=k, replace=False)
    return [items[i] for i in idx]
