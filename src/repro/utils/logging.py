"""Logging helpers.

A single place to obtain configured ``logging.Logger`` instances so that
library modules never call ``logging.basicConfig`` themselves (which would
stomp on user configuration).
"""

from __future__ import annotations

import logging
import os

_LOGGER_PREFIX = "repro"
_DEFAULT_LEVEL = os.environ.get("REPRO_LOG_LEVEL", "WARNING").upper()


def get_logger(name: str | None = None) -> logging.Logger:
    """Return a library logger.

    Parameters
    ----------
    name:
        Sub-logger name; ``None`` returns the package root logger
        ``"repro"``.  The root library logger gets a ``NullHandler`` so the
        library stays silent unless the application configures logging, except
        that the ``REPRO_LOG_LEVEL`` environment variable can force a level
        with a basic stderr handler for quick debugging.
    """
    full_name = _LOGGER_PREFIX if not name else f"{_LOGGER_PREFIX}.{name}"
    logger = logging.getLogger(full_name)
    root = logging.getLogger(_LOGGER_PREFIX)
    if not root.handlers:
        root.addHandler(logging.NullHandler())
        if _DEFAULT_LEVEL in ("DEBUG", "INFO"):
            handler = logging.StreamHandler()
            handler.setFormatter(
                logging.Formatter("[%(levelname)s] %(name)s: %(message)s")
            )
            root.addHandler(handler)
            root.setLevel(_DEFAULT_LEVEL)
    return logger
