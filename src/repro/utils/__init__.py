"""Shared utilities: RNG management, running statistics, options, logging, timing.

These helpers are deliberately dependency-light; every other subpackage builds
on them.  They mirror the kind of infrastructure MUQ provides in C++
(boost::property_tree-style option handling, sample statistics, etc.).
"""

from repro.utils.options import Options
from repro.utils.random import RandomSource, spawn_rngs
from repro.utils.stats import (
    RunningMoments,
    WeightedRunningMoments,
    batch_means_variance,
    integrated_autocorrelation_time,
    effective_sample_size,
    autocorrelation,
)
from repro.utils.timing import Timer, TimingRegistry
from repro.utils.logging import get_logger

__all__ = [
    "Options",
    "RandomSource",
    "spawn_rngs",
    "RunningMoments",
    "WeightedRunningMoments",
    "batch_means_variance",
    "integrated_autocorrelation_time",
    "effective_sample_size",
    "autocorrelation",
    "Timer",
    "TimingRegistry",
    "get_logger",
]
