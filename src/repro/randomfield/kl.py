"""Truncated Karhunen-Loeve expansions of Gaussian random fields.

The Poisson application models ``log kappa`` as a zero-mean Gaussian field with
exponential-type covariance (correlation length 0.15, variance 1) and truncates
its KL expansion after m = 113 modes, so the Bayesian parameter is the vector
of KL coefficients.  The expansion here is computed with the Nystrom method: a
dense eigendecomposition of the covariance matrix on a quadrature grid, then
evaluation of the eigenfunctions at arbitrary points through the covariance
kernel.  This keeps the construction mesh-independent, which is essential for
a multilevel hierarchy: all levels must share one parameterisation so that a
coarse-chain sample is a valid proposal for the fine chain.
"""

from __future__ import annotations

import numpy as np

from repro.randomfield.covariance import CovarianceKernel

__all__ = ["KarhunenLoeveExpansion"]


class KarhunenLoeveExpansion:
    """Truncated KL expansion ``f(x, theta) = sum_k sqrt(lambda_k) phi_k(x) theta_k``.

    Parameters
    ----------
    kernel:
        Stationary covariance kernel of the underlying Gaussian field.
    num_modes:
        Number of retained modes ``m`` (the Bayesian parameter dimension).
    domain:
        ``((x0, x1), (y0, y1), ...)`` bounds of the rectangular domain.
    quadrature_points_per_dim:
        Resolution of the Nystrom quadrature grid used for the
        eigendecomposition.  It bounds the number of resolvable modes:
        ``quadrature_points_per_dim ** dim`` must be at least ``num_modes``.

    Notes
    -----
    The eigenfunctions are normalised so that ``E[f(x)^2]`` reproduces the
    kernel variance as the truncation ``m -> len(grid)``; with a finite ``m``
    the truncated field under-represents small scales, which is precisely the
    truncation the paper accepts ("some higher frequency detail is not
    recovered").
    """

    def __init__(
        self,
        kernel: CovarianceKernel,
        num_modes: int,
        domain: tuple[tuple[float, float], ...] = ((0.0, 1.0), (0.0, 1.0)),
        quadrature_points_per_dim: int = 24,
    ) -> None:
        if num_modes <= 0:
            raise ValueError("num_modes must be positive")
        self._kernel = kernel
        self._num_modes = int(num_modes)
        self._domain = tuple((float(lo), float(hi)) for lo, hi in domain)
        self._dim = len(self._domain)
        n_quad = int(quadrature_points_per_dim)
        if n_quad**self._dim < num_modes:
            raise ValueError(
                "quadrature grid too coarse for the requested number of modes: "
                f"{n_quad}^{self._dim} < {num_modes}"
            )

        # Midpoint quadrature grid (uniform weights).
        axes = [
            np.linspace(lo, hi, n_quad, endpoint=False) + (hi - lo) / (2 * n_quad)
            for lo, hi in self._domain
        ]
        mesh = np.meshgrid(*axes, indexing="ij")
        self._quad_points = np.stack([m.ravel() for m in mesh], axis=-1)
        cell_volume = np.prod([(hi - lo) / n_quad for lo, hi in self._domain])
        self._quad_weight = float(cell_volume)

        # Nystrom eigendecomposition of the covariance operator.
        cov = kernel.matrix(self._quad_points)
        cov = 0.5 * (cov + cov.T)
        eigvals, eigvecs = np.linalg.eigh(cov * self._quad_weight)
        order = np.argsort(eigvals)[::-1]
        eigvals = np.maximum(eigvals[order], 0.0)
        eigvecs = eigvecs[:, order]

        self._eigenvalues = eigvals[: self._num_modes]
        # Discrete eigenvectors v satisfy C W v = lambda v with W = w I; the
        # L2-normalised continuous eigenfunction evaluated at the quadrature
        # nodes is v / sqrt(w).
        self._eigvec_nodes = eigvecs[:, : self._num_modes] / np.sqrt(self._quad_weight)

    # ------------------------------------------------------------------
    @property
    def num_modes(self) -> int:
        """Number of retained KL modes (parameter dimension)."""
        return self._num_modes

    @property
    def eigenvalues(self) -> np.ndarray:
        """Retained KL eigenvalues, sorted decreasingly."""
        return self._eigenvalues.copy()

    @property
    def dim(self) -> int:
        """Spatial dimension of the field."""
        return self._dim

    @property
    def domain(self) -> tuple[tuple[float, float], ...]:
        """The rectangular domain bounds."""
        return self._domain

    def energy_fraction(self) -> float:
        """Fraction of the total field variance captured by the truncation."""
        total = self._kernel.variance * self._domain_volume()
        captured = float(np.sum(self._eigenvalues))
        return min(1.0, captured / total) if total > 0 else 1.0

    def _domain_volume(self) -> float:
        return float(np.prod([hi - lo for lo, hi in self._domain]))

    # ------------------------------------------------------------------
    def eigenfunctions(self, points: np.ndarray) -> np.ndarray:
        """Evaluate all retained eigenfunctions at ``points`` -> (n_points, m).

        Uses the Nystrom extension
        ``phi_k(x) = (1 / lambda_k) * sum_j w C(x, x_j) v_k(x_j)``.
        """
        pts = np.atleast_2d(np.asarray(points, dtype=float))
        if pts.shape[1] != self._dim:
            raise ValueError(f"points must have dimension {self._dim}")
        cross_cov = self._kernel(pts, self._quad_points)
        phi = cross_cov @ (self._eigvec_nodes * self._quad_weight)
        with np.errstate(divide="ignore", invalid="ignore"):
            phi = np.where(self._eigenvalues > 1e-14, phi / self._eigenvalues, 0.0)
        return phi

    def modes(self, points: np.ndarray) -> np.ndarray:
        """Scaled modes ``sqrt(lambda_k) phi_k`` at ``points`` -> (n_points, m)."""
        return self.eigenfunctions(points) * np.sqrt(self._eigenvalues)

    def evaluate(self, points: np.ndarray, coefficients: np.ndarray) -> np.ndarray:
        """Evaluate the truncated field ``sum_k sqrt(lambda_k) phi_k(x) theta_k``."""
        coeffs = np.atleast_1d(np.asarray(coefficients, dtype=float)).ravel()
        if coeffs.shape[0] != self._num_modes:
            raise ValueError(
                f"expected {self._num_modes} KL coefficients, got {coeffs.shape[0]}"
            )
        return self.modes(points) @ coeffs

    def sample_coefficients(self, rng: np.random.Generator) -> np.ndarray:
        """Draw standard-normal KL coefficients (the prior's natural scaling)."""
        return rng.standard_normal(self._num_modes)

    def sample_field(self, points: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        """Draw one realisation of the truncated field at ``points``."""
        return self.evaluate(points, self.sample_coefficients(rng))

    def covariance_of_truncation(self, points: np.ndarray) -> np.ndarray:
        """Covariance matrix of the truncated field at ``points``.

        Useful in tests: it must be dominated by (and converge to) the exact
        kernel covariance as ``m`` grows.
        """
        modes = self.modes(points)
        return modes @ modes.T
