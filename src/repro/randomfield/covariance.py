"""Stationary covariance kernels for Gaussian random fields.

Kernels are functions of the separation vector ``r = x - y`` (stationarity).
They evaluate point pairs, assemble dense covariance matrices on point clouds
(for KL eigen-decompositions) and evaluate on lag grids (for circulant
embedding).
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np
from scipy.special import gamma, kv

__all__ = [
    "CovarianceKernel",
    "ExponentialCovariance",
    "GaussianCovariance",
    "MaternCovariance",
    "SeparableExponentialCovariance",
]


class CovarianceKernel(ABC):
    """Abstract stationary covariance kernel ``C(r)`` with ``r = x - y``."""

    def __init__(self, variance: float, correlation_length: float) -> None:
        if variance <= 0:
            raise ValueError("variance must be positive")
        if correlation_length <= 0:
            raise ValueError("correlation length must be positive")
        self.variance = float(variance)
        self.correlation_length = float(correlation_length)

    @abstractmethod
    def evaluate_lag(self, lag: np.ndarray) -> np.ndarray:
        """Covariance for an array of separation vectors ``lag`` of shape (..., d)."""

    def __call__(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Covariance between point sets ``x`` (n, d) and ``y`` (m, d) -> (n, m)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.atleast_2d(np.asarray(y, dtype=float))
        lag = x[:, None, :] - y[None, :, :]
        return self.evaluate_lag(lag)

    def matrix(self, points: np.ndarray) -> np.ndarray:
        """Dense covariance matrix on a point cloud (n, d)."""
        return self(points, points)

    def _distance(self, lag: np.ndarray) -> np.ndarray:
        lag = np.asarray(lag, dtype=float)
        if lag.ndim == 1:
            lag = lag[None, :]
        return np.sqrt(np.sum(lag * lag, axis=-1))


class ExponentialCovariance(CovarianceKernel):
    """Isotropic exponential covariance ``sigma^2 exp(-|r| / lambda)``.

    This is the Matern family with smoothness 1/2 and the standard choice for
    log-permeability fields in subsurface-flow benchmarks.
    """

    def evaluate_lag(self, lag: np.ndarray) -> np.ndarray:
        dist = self._distance(lag)
        return self.variance * np.exp(-dist / self.correlation_length)


class GaussianCovariance(CovarianceKernel):
    """Squared-exponential covariance ``sigma^2 exp(-|r|^2 / (2 lambda^2))``."""

    def evaluate_lag(self, lag: np.ndarray) -> np.ndarray:
        dist2 = np.sum(np.asarray(lag, dtype=float) ** 2, axis=-1)
        return self.variance * np.exp(-0.5 * dist2 / self.correlation_length**2)


class MaternCovariance(CovarianceKernel):
    """Matern covariance with smoothness parameter ``nu``.

    ``C(r) = sigma^2 * 2^(1-nu)/Gamma(nu) * (sqrt(2 nu) |r|/lambda)^nu
             * K_nu(sqrt(2 nu) |r|/lambda)``
    """

    def __init__(self, variance: float, correlation_length: float, nu: float = 1.5) -> None:
        super().__init__(variance, correlation_length)
        if nu <= 0:
            raise ValueError("smoothness nu must be positive")
        self.nu = float(nu)

    def evaluate_lag(self, lag: np.ndarray) -> np.ndarray:
        dist = self._distance(lag)
        scaled = math.sqrt(2.0 * self.nu) * dist / self.correlation_length
        result = np.full_like(scaled, self.variance, dtype=float)
        positive = scaled > 0
        s = scaled[positive]
        coef = self.variance * (2.0 ** (1.0 - self.nu)) / gamma(self.nu)
        result[positive] = coef * (s**self.nu) * kv(self.nu, s)
        return result


class SeparableExponentialCovariance(CovarianceKernel):
    """Separable exponential covariance ``sigma^2 prod_i exp(-|r_i| / lambda)``.

    The tensor-product structure admits an analytic 1-D KL decomposition, which
    makes the truncated KL expansion of 2-D fields cheap: 2-D modes are tensor
    products of 1-D modes.  ``dune-randomfield``'s circulant-embedding
    generator targets exactly this family of stationary kernels.
    """

    def evaluate_lag(self, lag: np.ndarray) -> np.ndarray:
        lag = np.asarray(lag, dtype=float)
        if lag.ndim == 1:
            lag = lag[None, :]
        return self.variance * np.exp(
            -np.sum(np.abs(lag), axis=-1) / self.correlation_length
        )

    # -- analytic 1-D KL ----------------------------------------------------
    def kl_eigen_1d(self, num_modes: int, domain_length: float = 1.0) -> tuple[np.ndarray, np.ndarray]:
        """1-D KL eigenvalues and frequencies on ``[0, L]`` for the exponential kernel.

        The eigenpairs of ``exp(-|x-y|/lambda)`` on an interval solve the
        transcendental equations

        ``(1/lambda - w tan(w L/2)) = 0``   (even modes) and
        ``(w + (1/lambda) tan(w L/2)) = 0`` (odd modes),

        with eigenvalues ``2 lambda / (1 + lambda^2 w^2)`` (scaled by the
        variance).  Returns ``(eigenvalues, frequencies)`` sorted by decreasing
        eigenvalue.
        """
        lam = self.correlation_length
        a = domain_length / 2.0
        c = 1.0 / lam

        def even_eq(w: float) -> float:
            return c - w * math.tan(w * a)

        def odd_eq(w: float) -> float:
            return w + c * math.tan(w * a)

        freqs: list[float] = []
        kinds: list[str] = []
        n_intervals = 2 * num_modes + 4
        for n in range(n_intervals):
            # Even roots live in ((n - 1/2) pi / a, (n + 1/2) pi / a) around n*pi/a.
            lo = (n * math.pi - math.pi / 2) / a + 1e-9
            hi = (n * math.pi + math.pi / 2) / a - 1e-9
            lo = max(lo, 1e-9)
            root = _bisect_root(even_eq, lo, hi)
            if root is not None:
                freqs.append(root)
                kinds.append("even")
            root = _bisect_root(odd_eq, lo, hi)
            if root is not None and root > 1e-8:
                freqs.append(root)
                kinds.append("odd")

        freqs_arr = np.array(freqs)
        eigvals = self.variance * 2.0 * c / (freqs_arr**2 + c**2)
        order = np.argsort(eigvals)[::-1][:num_modes]
        return eigvals[order], freqs_arr[order]


def _bisect_root(func, lo: float, hi: float, tol: float = 1e-12, max_iter: int = 200):
    """Robust bisection on ``[lo, hi]``; returns ``None`` when no sign change exists."""
    flo, fhi = func(lo), func(hi)
    if not (np.isfinite(flo) and np.isfinite(fhi)) or flo * fhi > 0:
        return None
    for _ in range(max_iter):
        mid = 0.5 * (lo + hi)
        fmid = func(mid)
        if abs(fmid) < tol or (hi - lo) < tol:
            return mid
        if flo * fmid <= 0:
            hi, fhi = mid, fmid
        else:
            lo, flo = mid, fmid
    return 0.5 * (lo + hi)
