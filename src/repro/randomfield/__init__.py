"""Gaussian random field generation.

Substitute for ``dune-randomfield``: stationary Gaussian random fields on
structured grids via truncated Karhunen-Loeve expansions and circulant
embedding, with the exponential/Matern covariance families used by the
Poisson subsurface-flow application (correlation length 0.15, variance 1,
m = 113 KL modes in the paper).
"""

from repro.randomfield.covariance import (
    CovarianceKernel,
    ExponentialCovariance,
    GaussianCovariance,
    MaternCovariance,
    SeparableExponentialCovariance,
)
from repro.randomfield.kl import KarhunenLoeveExpansion
from repro.randomfield.circulant import CirculantEmbeddingSampler
from repro.randomfield.field import GaussianRandomField

__all__ = [
    "CovarianceKernel",
    "ExponentialCovariance",
    "GaussianCovariance",
    "MaternCovariance",
    "SeparableExponentialCovariance",
    "KarhunenLoeveExpansion",
    "CirculantEmbeddingSampler",
    "GaussianRandomField",
]
