"""Circulant-embedding sampling of stationary Gaussian fields on regular grids.

``dune-randomfield`` (used by the paper for the Poisson application's synthetic
"truth" field) generates stationary Gaussian random fields by embedding the
block-Toeplitz covariance of a regular grid into a larger block-circulant
matrix, whose eigenvalues are obtained by FFT (Dietrich & Newsam 1997).  This
module reproduces that generator for 1-D and 2-D grids.
"""

from __future__ import annotations

import numpy as np

from repro.randomfield.covariance import CovarianceKernel

__all__ = ["CirculantEmbeddingSampler"]


class CirculantEmbeddingSampler:
    """Exact sampler for stationary Gaussian fields on a regular grid.

    Parameters
    ----------
    kernel:
        Stationary covariance kernel.
    shape:
        Grid shape ``(nx,)`` or ``(nx, ny)``.
    domain:
        Physical bounds per dimension; grid nodes are equally spaced including
        both endpoints.
    padding_factor:
        The embedding is computed on a grid extended by this factor per
        dimension.  If the resulting circulant spectrum still has negative
        eigenvalues the embedding doubles the padding up to ``max_padding``.
    max_padding:
        Upper bound on the padding factor before falling back to clipping
        negative eigenvalues (approximate embedding).
    """

    def __init__(
        self,
        kernel: CovarianceKernel,
        shape: tuple[int, ...],
        domain: tuple[tuple[float, float], ...] = ((0.0, 1.0), (0.0, 1.0)),
        padding_factor: int = 2,
        max_padding: int = 16,
    ) -> None:
        self._kernel = kernel
        self._shape = tuple(int(n) for n in shape)
        if len(self._shape) not in (1, 2):
            raise ValueError("circulant embedding supports 1-D and 2-D grids")
        if any(n < 2 for n in self._shape):
            raise ValueError("grid must have at least 2 points per dimension")
        self._domain = tuple(domain)[: len(self._shape)]
        self._spacing = tuple(
            (hi - lo) / (n - 1) for (lo, hi), n in zip(self._domain, self._shape)
        )
        self._clipped_energy = 0.0

        padding = int(padding_factor)
        while True:
            eigenvalues, ext_shape = self._build_embedding(padding)
            min_eig = float(eigenvalues.min())
            if min_eig >= -1e-10 * float(eigenvalues.max()):
                break
            if padding >= max_padding:
                break
            padding *= 2
        negative = eigenvalues < 0
        self._clipped_energy = float(-eigenvalues[negative].sum())
        eigenvalues = np.where(negative, 0.0, eigenvalues)
        self._eigenvalues = eigenvalues
        self._ext_shape = ext_shape
        self._padding = padding

    # ------------------------------------------------------------------
    def _build_embedding(self, padding: int) -> tuple[np.ndarray, tuple[int, ...]]:
        """Eigenvalues of the block-circulant embedding for a given padding."""
        ext_shape = tuple(padding * (n - 1) * 2 for n in self._shape)
        lags = []
        for n_ext, h in zip(ext_shape, self._spacing):
            idx = np.arange(n_ext)
            # wrap-around lags: 0, h, 2h, ..., then decreasing again
            wrapped = np.minimum(idx, n_ext - idx) * h
            lags.append(wrapped)
        if len(ext_shape) == 1:
            lag_vectors = lags[0][:, None]
            cov_row = self._kernel.evaluate_lag(lag_vectors).reshape(ext_shape)
            eigenvalues = np.fft.fft(cov_row).real
        else:
            lag_x, lag_y = np.meshgrid(lags[0], lags[1], indexing="ij")
            lag_vectors = np.stack([lag_x, lag_y], axis=-1)
            cov_block = self._kernel.evaluate_lag(lag_vectors)
            eigenvalues = np.fft.fft2(cov_block).real
        return eigenvalues, ext_shape

    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        """Target grid shape."""
        return self._shape

    @property
    def padding(self) -> int:
        """Padding factor finally used for the embedding."""
        return self._padding

    @property
    def clipped_energy(self) -> float:
        """Total magnitude of clipped negative eigenvalues (0 for an exact embedding)."""
        return self._clipped_energy

    def grid_points(self) -> np.ndarray:
        """Physical coordinates of the grid nodes, shape ``(prod(shape), dim)``."""
        axes = [
            np.linspace(lo, hi, n) for (lo, hi), n in zip(self._domain, self._shape)
        ]
        mesh = np.meshgrid(*axes, indexing="ij")
        return np.stack([m.ravel() for m in mesh], axis=-1)

    def sample(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one realisation on the target grid (shape ``self.shape``)."""
        ext = self._ext_shape
        sqrt_eig = np.sqrt(np.maximum(self._eigenvalues, 0.0))
        if len(ext) == 1:
            noise = rng.standard_normal(ext[0]) + 1j * rng.standard_normal(ext[0])
            spectrum = sqrt_eig * noise / np.sqrt(ext[0])
            field = np.fft.fft(spectrum)
            sample = field.real[: self._shape[0]]
        else:
            noise = rng.standard_normal(ext) + 1j * rng.standard_normal(ext)
            spectrum = sqrt_eig * noise / np.sqrt(np.prod(ext))
            field = np.fft.fft2(spectrum)
            sample = field.real[: self._shape[0], : self._shape[1]]
        return np.ascontiguousarray(sample)

    def sample_pair(self, rng: np.random.Generator) -> tuple[np.ndarray, np.ndarray]:
        """Draw two independent realisations from one complex FFT (no extra cost)."""
        ext = self._ext_shape
        sqrt_eig = np.sqrt(np.maximum(self._eigenvalues, 0.0))
        if len(ext) == 1:
            noise = rng.standard_normal(ext[0]) + 1j * rng.standard_normal(ext[0])
            spectrum = sqrt_eig * noise / np.sqrt(ext[0])
            field = np.fft.fft(spectrum)
            return (
                np.ascontiguousarray(field.real[: self._shape[0]]),
                np.ascontiguousarray(field.imag[: self._shape[0]]),
            )
        noise = rng.standard_normal(ext) + 1j * rng.standard_normal(ext)
        spectrum = sqrt_eig * noise / np.sqrt(np.prod(ext))
        field = np.fft.fft2(spectrum)
        return (
            np.ascontiguousarray(field.real[: self._shape[0], : self._shape[1]]),
            np.ascontiguousarray(field.imag[: self._shape[0], : self._shape[1]]),
        )
