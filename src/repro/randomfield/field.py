"""High-level Gaussian random field facade.

Couples a covariance kernel, a KL parameterisation and an optional mean into
the object the Poisson model hierarchy consumes: a map from KL coefficients to
(log-)diffusion-coefficient values at arbitrary points, at any mesh resolution.
"""

from __future__ import annotations

import numpy as np

from repro.randomfield.covariance import CovarianceKernel, ExponentialCovariance
from repro.randomfield.kl import KarhunenLoeveExpansion

__all__ = ["GaussianRandomField"]


class GaussianRandomField:
    """A (possibly log-transformed) Gaussian random field with KL parameterisation.

    Parameters
    ----------
    kernel:
        Covariance kernel of the underlying Gaussian field; defaults to the
        paper's exponential covariance with correlation length 0.15 and unit
        variance.
    num_modes:
        Number of KL modes, i.e. the Bayesian parameter dimension (113 in the
        paper).
    mean:
        Constant mean of the Gaussian field (0 in the paper).
    log_transform:
        If True, :meth:`evaluate` returns ``exp(field)`` — the log-normal
        diffusion coefficient ``kappa``; :meth:`evaluate_log` always returns
        the Gaussian field itself.
    domain:
        Rectangular domain bounds.
    quadrature_points_per_dim:
        Nystrom resolution for the KL decomposition.
    """

    def __init__(
        self,
        kernel: CovarianceKernel | None = None,
        num_modes: int = 113,
        mean: float = 0.0,
        log_transform: bool = True,
        domain: tuple[tuple[float, float], ...] = ((0.0, 1.0), (0.0, 1.0)),
        quadrature_points_per_dim: int = 24,
    ) -> None:
        self._kernel = kernel or ExponentialCovariance(variance=1.0, correlation_length=0.15)
        self._kl = KarhunenLoeveExpansion(
            self._kernel,
            num_modes=num_modes,
            domain=domain,
            quadrature_points_per_dim=quadrature_points_per_dim,
        )
        self._mean = float(mean)
        self._log_transform = bool(log_transform)

    # ------------------------------------------------------------------
    @property
    def kernel(self) -> CovarianceKernel:
        """The covariance kernel."""
        return self._kernel

    @property
    def kl(self) -> KarhunenLoeveExpansion:
        """The underlying KL expansion."""
        return self._kl

    @property
    def num_modes(self) -> int:
        """Parameter (KL coefficient) dimension."""
        return self._kl.num_modes

    @property
    def log_transform(self) -> bool:
        """Whether :meth:`evaluate` exponentiates the Gaussian field."""
        return self._log_transform

    # ------------------------------------------------------------------
    def evaluate_log(self, points: np.ndarray, coefficients: np.ndarray) -> np.ndarray:
        """The Gaussian (log) field at ``points`` for the given KL coefficients."""
        return self._mean + self._kl.evaluate(points, coefficients)

    def evaluate(self, points: np.ndarray, coefficients: np.ndarray) -> np.ndarray:
        """The field consumed by the PDE (``exp`` of the Gaussian field when log-transformed)."""
        log_field = self.evaluate_log(points, coefficients)
        return np.exp(log_field) if self._log_transform else log_field

    def sample_coefficients(self, rng: np.random.Generator) -> np.ndarray:
        """Standard-normal KL coefficients."""
        return self._kl.sample_coefficients(rng)

    def evaluate_on_grid(
        self, coefficients: np.ndarray, resolution: int, log: bool = False
    ) -> np.ndarray:
        """Evaluate on a uniform ``(resolution+1) x (resolution+1)`` nodal grid.

        Returns a 2-D array indexed ``[i, j]`` over x- and y-nodes; handy for
        QOI grids (the paper's 1/32-width QOI grid) and for plotting.
        """
        (x0, x1), (y0, y1) = self._kl.domain[:2]
        xs = np.linspace(x0, x1, resolution + 1)
        ys = np.linspace(y0, y1, resolution + 1)
        grid_x, grid_y = np.meshgrid(xs, ys, indexing="ij")
        points = np.stack([grid_x.ravel(), grid_y.ravel()], axis=-1)
        values = self.evaluate_log(points, coefficients)
        if not log and self._log_transform:
            values = np.exp(values)
        return values.reshape(resolution + 1, resolution + 1)
