"""Conformance tests for the shared ForwardModel layer (:mod:`repro.models.base`).

Every application's forward map — Poisson, Gaussian, tsunami — must satisfy
the same contract: ``forward_batch`` of an ``(n, dim)`` block row-equals the
stacked scalar ``forward`` evaluations, with ``output_dim`` columns.  The
tsunami model's batch path additionally has to actually take the vectorized
route through :class:`repro.evaluation.BatchEvaluator` (the whole point of
the ensemble solver), which the evaluator statistics confirm.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.evaluation import BatchEvaluator
from repro.models.base import ForwardModel
from repro.models.gaussian import GaussianIdentityForwardModel
from repro.models.tsunami import TsunamiInverseProblemFactory, TsunamiLevelSpec


def _small_tsunami_factory(**kwargs) -> TsunamiInverseProblemFactory:
    return TsunamiInverseProblemFactory(
        level_specs=(
            TsunamiLevelSpec(0, 12, "constant", False, 0.15, 2.5),
            TsunamiLevelSpec(1, 24, "smoothed", True, 0.10, 1.5, smoothing_passes=2),
        ),
        end_time=900.0,
        subsampling_rates=[0, 2],
        **kwargs,
    )


@pytest.fixture(scope="module")
def forward_models(small_poisson_factory):
    """One representative (model, parameter block) pair per application."""
    rng = np.random.default_rng(99)
    poisson = small_poisson_factory.forward_model(0)
    tsunami = _small_tsunami_factory().forward_model(1)
    return {
        "poisson": (poisson, rng.standard_normal((4, poisson.parameter_dim))),
        "gaussian": (GaussianIdentityForwardModel(3), rng.standard_normal((4, 3))),
        "tsunami": (tsunami, np.array([[0.0, 0.0], [15.0, -10.0], [-20.0, 25.0]])),
    }


class TestForwardModelConformance:
    @pytest.mark.parametrize("name", ["poisson", "gaussian", "tsunami"])
    def test_implements_the_protocol(self, forward_models, name):
        model, _ = forward_models[name]
        assert isinstance(model, ForwardModel)
        assert model.output_dim > 0

    @pytest.mark.parametrize("name", ["poisson", "gaussian", "tsunami"])
    def test_forward_batch_row_equals_stacked_forward(self, forward_models, name):
        model, thetas = forward_models[name]
        stacked = np.stack([model.forward(theta) for theta in thetas])
        batched = model.forward_batch(thetas)
        assert batched.shape == (thetas.shape[0], model.output_dim)
        np.testing.assert_allclose(batched, stacked, rtol=0.0, atol=1e-10)

    @pytest.mark.parametrize("name", ["poisson", "gaussian", "tsunami"])
    def test_call_matches_forward(self, forward_models, name):
        model, thetas = forward_models[name]
        np.testing.assert_array_equal(model(thetas[0]), model.forward(thetas[0]))

    def test_tsunami_batch_is_bitwise_identical(self, forward_models):
        # Stronger than the 1e-10 contract: the ensemble solver integrates
        # every member with its own CFL step through operation-identical
        # kernels, so the batch path reproduces the scalar path exactly.
        model, thetas = forward_models["tsunami"]
        stacked = np.stack([model.forward(theta) for theta in thetas])
        np.testing.assert_array_equal(model.forward_batch(thetas), stacked)

    def test_tsunami_physical_mask_matches_scalar_check(self, forward_models):
        from repro.bayes.likelihood import UnphysicalModelOutput

        model, _ = forward_models["tsunami"]
        thetas = np.array([[0.0, 0.0], [-185.0, 0.0], [1e6, 0.0], [10.0, 10.0]])
        mask = model.physical_mask(thetas)
        np.testing.assert_array_equal(mask, [True, False, False, True])
        with pytest.raises(UnphysicalModelOutput):
            model.forward_batch(thetas)


class TestTsunamiBatchEvaluator:
    def test_batch_evaluator_takes_the_batch_path(self):
        factory = _small_tsunami_factory(evaluation_backend="batch")
        problem = factory.problem_for_level(0)
        assert isinstance(problem.evaluator, BatchEvaluator)
        thetas = np.array([[0.0, 0.0], [10.0, 5.0], [-119.0, 0.0], [20.0, -10.0]])
        values = problem.log_density_batch(thetas)

        stats = problem.evaluation_stats
        assert stats.batch_calls >= 1, "tsunami block was not served by the batch path"
        assert stats.log_density_evaluations == thetas.shape[0]

        # identical to a scalar-evaluated problem, including the unphysical row
        scalar_problem = _small_tsunami_factory().problem_for_level(0)
        expected = np.array([scalar_problem.log_density(t) for t in thetas])
        np.testing.assert_array_equal(values, expected)
        assert scalar_problem.evaluation_stats.batch_calls == 0
