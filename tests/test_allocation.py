"""Tests for the live variance/cost-driven allocation layer.

Covers the :mod:`repro.core.allocation` policy machinery in isolation, its
integration with the sequential sampler (fixed policy bitwise against the
legacy path, adaptive continuation trajectories), the streaming-variance
snapshots the policies poll, and the experiments plumbing (spec ``budget``
hash stability, manifest schema v5, runner/CLI overrides).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ContinuationAllocation,
    FixedAllocation,
    LevelSnapshot,
    MLMCMCSampler,
    SamplingBudget,
    cost_capped_allocation,
    policy_from_budget,
)
from repro.core.sample_collection import (
    CorrectionCollection,
    SampleCollection,
    SamplingState,
)
from repro.models.gaussian import GaussianHierarchyFactory
from repro.parallel import ConstantCostModel


def _snapshots(counts, variances, costs):
    return [
        LevelSnapshot(
            level=level,
            num_samples=counts[level],
            variance=variances[level],
            cost_per_sample=costs[level],
            total_cost=counts[level] * costs[level],
        )
        for level in range(len(counts))
    ]


class TestSamplingBudget:
    def test_exactly_one_objective(self):
        with pytest.raises(ValueError):
            SamplingBudget()
        with pytest.raises(ValueError):
            SamplingBudget(target_mse=1e-3, cost_cap=10.0)
        assert SamplingBudget(target_mse=1e-3).cost_cap is None
        assert SamplingBudget(cost_cap=10.0).target_mse is None

    def test_validation(self):
        with pytest.raises(ValueError):
            SamplingBudget(target_mse=0.0)
        with pytest.raises(ValueError):
            SamplingBudget(cost_cap=-1.0)
        with pytest.raises(ValueError):
            SamplingBudget(target_mse=1e-3, max_rounds=0)
        with pytest.raises(ValueError):
            SamplingBudget(target_mse=1e-3, min_rounds=0)
        with pytest.raises(ValueError):
            SamplingBudget(target_mse=1e-3, growth_factor=0.5)

    def test_dict_round_trip(self):
        for budget in (
            SamplingBudget(target_mse=2e-4, max_rounds=5, growth_factor=2.0),
            SamplingBudget(cost_cap=42.0, min_rounds=3),
        ):
            assert SamplingBudget.from_dict(budget.as_dict()) == budget

    def test_from_dict_ignores_extra_keys(self):
        budget = SamplingBudget.from_dict(
            {"policy": "adaptive", "target_mse": 1e-3, "pilot": [8, 4]}
        )
        assert budget.target_mse == 1e-3


class TestFixedAllocation:
    def test_single_round(self):
        policy = FixedAllocation([100, 20, 5])
        assert policy.name == "fixed"
        assert policy.initial_targets(3) == [100, 20, 5]
        snapshots = _snapshots([100, 20, 5], [1.0, 0.1, 0.01], [1.0, 4.0, 16.0])
        assert policy.update(snapshots) is None


class TestContinuationAllocation:
    def test_default_pilot_is_coarse_heavy_geometric(self):
        policy = ContinuationAllocation(
            SamplingBudget(target_mse=1e-3), pilot_base=16
        )
        assert policy.initial_targets(3) == [64, 32, 16]

    def test_explicit_pilot_length_checked(self):
        policy = ContinuationAllocation(
            SamplingBudget(target_mse=1e-3), pilot=[10, 5]
        )
        assert policy.initial_targets(2) == [10, 5]
        with pytest.raises(ValueError):
            policy.initial_targets(3)

    def test_growth_factor_caps_each_round(self):
        policy = ContinuationAllocation(
            SamplingBudget(target_mse=1e-8, growth_factor=3.0), pilot=[10, 10]
        )
        targets = policy.update(
            _snapshots([10, 10], [1.0, 1.0], [1.0, 1.0])
        )
        # the tiny tolerance wants far more than 30; growth caps it at 3x
        assert targets == [30, 30]

    def test_targets_are_monotone(self):
        policy = ContinuationAllocation(
            SamplingBudget(target_mse=10.0), pilot=[50, 50]
        )
        # a very loose tolerance needs fewer samples than already collected;
        # the update never shrinks below the collected counts
        targets = policy.update(
            _snapshots([50, 50], [1e-6, 1e-6], [1.0, 1.0])
        )
        if targets is not None:
            assert all(t >= 50 for t in targets)

    def test_confirmation_round_then_stop(self):
        # met on the first round: min_rounds=2 forces one ~25% confirmation
        # round before the target may be declared reached
        policy = ContinuationAllocation(
            SamplingBudget(target_mse=10.0, min_rounds=2), pilot=[8, 8]
        )
        snapshots = _snapshots([8, 8], [1e-6, 1e-6], [1.0, 1.0])
        confirmation = policy.update(snapshots)
        assert confirmation == [10, 10]
        again = _snapshots([10, 10], [1e-6, 1e-6], [1.0, 1.0])
        assert policy.update(again) is None

    def test_max_rounds_stops(self):
        policy = ContinuationAllocation(
            SamplingBudget(target_mse=1e-12, max_rounds=2), pilot=[4, 4]
        )
        assert policy.update(_snapshots([4, 4], [1.0, 1.0], [1.0, 1.0])) is not None
        assert policy.update(_snapshots([12, 12], [1.0, 1.0], [1.0, 1.0])) is None

    def test_cost_cap_stops_on_overrun(self):
        policy = ContinuationAllocation(
            SamplingBudget(cost_cap=5.0), pilot=[4, 4]
        )
        # spent 4*1 + 4*1 = 8 >= 5: stop immediately
        assert policy.update(_snapshots([4, 4], [1.0, 1.0], [1.0, 1.0])) is None

    def test_cost_cap_increments_respect_remaining_budget(self):
        cap = 100.0
        policy = ContinuationAllocation(
            SamplingBudget(cost_cap=cap, growth_factor=100.0), pilot=[10, 10]
        )
        counts, costs = [10, 10], [1.0, 4.0]
        spent = sum(n * c for n, c in zip(counts, costs))
        targets = policy.update(_snapshots(counts, [1.0, 1.0], costs))
        assert targets is not None
        increment = sum(
            (t - n) * c for t, n, c in zip(targets, counts, costs)
        )
        assert increment <= cap - spent + 1e-9

    def test_cost_capped_allocation_fits_cap(self):
        variances = np.array([1.0, 0.1, 0.01])
        costs = np.array([1.0, 4.0, 16.0])
        targets = cost_capped_allocation(variances, costs, cost_cap=100.0)
        assert float(np.dot(targets, costs)) <= 100.0
        # more samples where sqrt(V/C) is larger
        assert targets[0] >= targets[1] >= targets[2]


class TestPolicyFromBudget:
    def test_empty_and_fixed_give_none(self):
        assert policy_from_budget({}) is None
        assert policy_from_budget({"policy": "fixed"}) is None

    def test_pilot_derived_from_plan(self):
        policy = policy_from_budget(
            {"policy": "adaptive", "target_mse": 1e-3},
            num_samples=[600, 150, 50],
        )
        assert policy.initial_targets(3) == [75, 18, 6]

    def test_explicit_pilot_wins(self):
        policy = policy_from_budget(
            {"policy": "adaptive", "cost_cap": 10.0, "pilot": [8, 4, 2]},
            num_samples=[600, 150, 50],
        )
        assert policy.initial_targets(3) == [8, 4, 2]


@pytest.fixture(scope="module")
def gaussian_factory():
    return GaussianHierarchyFactory(dim=2, num_levels=3, decay=0.5, subsampling=2)


class TestSequentialAllocation:
    def test_fixed_policy_is_bitwise_identical_to_legacy(self, gaussian_factory):
        plan = [80, 30, 12]
        legacy = MLMCMCSampler(gaussian_factory, num_samples=plan, seed=19).run()
        explicit = MLMCMCSampler(
            gaussian_factory,
            num_samples=plan,
            seed=19,
            allocation=FixedAllocation(plan),
        ).run()
        np.testing.assert_array_equal(legacy.mean, explicit.mean)
        for a, b in zip(legacy.corrections, explicit.corrections):
            np.testing.assert_array_equal(a.differences(), b.differences())
        # both record exactly one allocation round with the plan realized
        for result in (legacy, explicit):
            assert len(result.allocation_rounds) == 1
            assert result.allocation_rounds[0].collected == plan

    def test_adaptive_run_records_trajectory(self, gaussian_factory):
        policy = ContinuationAllocation(
            SamplingBudget(target_mse=5e-3, max_rounds=4), pilot=[16, 8, 4]
        )
        result = MLMCMCSampler(
            gaussian_factory, seed=19, allocation=policy
        ).run()
        rounds = result.allocation_rounds
        assert len(rounds) >= 2
        assert rounds[0].collected == [16, 8, 4]
        # targets grow monotonically across rounds, samples match targets
        for earlier, later in zip(rounds, rounds[1:]):
            assert all(
                b >= a for a, b in zip(earlier.targets, later.targets)
            )
        assert [len(c) for c in result.corrections] == rounds[-1].collected

    def test_cost_model_makes_trajectory_deterministic(self, gaussian_factory):
        prices = [1.0, 4.0, 16.0]

        def run_once():
            policy = ContinuationAllocation(
                SamplingBudget(cost_cap=600.0, max_rounds=5), pilot=[16, 8, 4]
            )
            return MLMCMCSampler(
                gaussian_factory,
                seed=7,
                allocation=policy,
                cost_model=ConstantCostModel(prices),
            ).run()

        first, second = run_once(), run_once()
        assert [r.targets for r in first.allocation_rounds] == [
            r.targets for r in second.allocation_rounds
        ]
        # the ledger is priced by the model, not by wall time
        final = first.allocation_rounds[-1]
        expected = sum(
            n * c for n, c in zip(final.collected, prices)
        )
        assert final.spent_cost == pytest.approx(expected)
        assert expected <= 600.0


class TestStreamingVariance:
    """Satellite: pin the incremental Welford snapshots against batch results."""

    def test_sample_collection_matches_batch_variance(self):
        rng = np.random.default_rng(5)
        collection = SampleCollection()
        for _ in range(200):
            collection.add(SamplingState(parameters=rng.normal(size=3)))
        np.testing.assert_allclose(
            collection.streaming_variance(), collection.variance(), rtol=1e-10
        )
        np.testing.assert_allclose(
            collection.streaming_mean(), collection.mean(), rtol=1e-10
        )
        np.testing.assert_allclose(
            collection.streaming_variance(),
            np.var(collection.parameters(), axis=0, ddof=1),
            rtol=1e-10,
        )

    def test_weighted_duplicates_match_expanded_chain(self):
        # rejected MCMC proposals repeat the previous state: the streaming
        # accumulator must weight duplicates like the expanded chain does
        rng = np.random.default_rng(6)
        collection = SampleCollection()
        state = SamplingState(parameters=rng.normal(size=2))
        for _ in range(50):
            if rng.random() < 0.4:
                state = SamplingState(parameters=rng.normal(size=2))
            collection.add(state)
        np.testing.assert_allclose(
            collection.streaming_variance(),
            np.var(collection.parameters(expand=True), axis=0, ddof=1),
            rtol=1e-10,
        )

    def test_empty_and_single_sample_edge_cases(self):
        empty = SampleCollection()
        assert empty.streaming_variance().size == 0
        single = SampleCollection()
        single.add(SamplingState(parameters=np.array([1.0, 2.0])))
        np.testing.assert_array_equal(
            single.streaming_variance(), np.zeros(2)
        )

    def test_merge_and_subset_keep_streaming_consistent(self):
        rng = np.random.default_rng(7)
        left, right = SampleCollection(), SampleCollection()
        for _ in range(30):
            left.add(SamplingState(parameters=rng.normal(size=2)))
            right.add(SamplingState(parameters=rng.normal(2.0, 3.0, size=2)))
        left.merge(right)
        np.testing.assert_allclose(
            left.streaming_variance(), left.variance(), rtol=1e-10
        )
        tail = left.subset(10)
        np.testing.assert_allclose(
            tail.streaming_variance(), tail.variance(), rtol=1e-10
        )

    def test_state_dict_round_trip_rebuilds_accumulator(self):
        rng = np.random.default_rng(8)
        collection = SampleCollection()
        for _ in range(25):
            collection.add(SamplingState(parameters=rng.normal(size=2)))
        restored = SampleCollection.from_state_dict(collection.state_dict())
        np.testing.assert_allclose(
            restored.streaming_variance(),
            collection.streaming_variance(),
            rtol=1e-12,
        )

    def test_correction_collection_with_and_without_coarse(self):
        rng = np.random.default_rng(9)
        with_coarse = CorrectionCollection(level=1)
        level_zero = CorrectionCollection(level=0)
        for _ in range(100):
            with_coarse.add(rng.normal(size=2), rng.normal(size=2))
            level_zero.add(rng.normal(size=2))
        for collection in (with_coarse, level_zero):
            np.testing.assert_allclose(
                collection.streaming_variance(),
                np.var(collection.differences(), axis=0, ddof=1),
                rtol=1e-10,
            )

    def test_correction_collection_empty(self):
        assert CorrectionCollection(level=0).streaming_variance().size == 0


class TestExperimentsBudgetPlumbing:
    def test_empty_budget_is_hash_stable(self):
        from repro.experiments import ExperimentSpec

        spec = ExperimentSpec(name="t", driver="sequential")
        assert "budget" not in spec.as_dict()
        with_budget = ExperimentSpec(
            name="t", driver="sequential", budget={"policy": "adaptive",
                                                   "target_mse": 1e-3}
        )
        assert "budget" in with_budget.as_dict()
        assert spec.hash() != with_budget.hash()

    def test_resolved_budget_objectives(self):
        from repro.experiments import ExperimentSpec

        spec = ExperimentSpec(name="t", driver="sequential")
        mse = spec.resolved(target_mse=1e-3)
        assert mse.budget == {"policy": "adaptive", "target_mse": 1e-3}
        cap = spec.resolved(cost_budget=25.0)
        assert cap.budget == {"policy": "adaptive", "cost_cap": 25.0}
        with pytest.raises(ValueError):
            spec.resolved(target_mse=1e-3, cost_budget=25.0)

    def test_resolved_objective_replaces_previous(self):
        from repro.experiments import get_scenario

        spec = get_scenario("poisson-adaptive").resolved(cost_budget=30.0)
        assert spec.budget["cost_cap"] == 30.0
        assert "target_mse" not in spec.budget
        # non-objective knobs (pilot, max_rounds) survive the override
        assert spec.budget["pilot"] == [75, 18, 6]

    def test_runner_rejects_budget_on_non_budgeted_driver(self):
        from repro.experiments import BackendNotApplicableError, run_scenario

        with pytest.raises(BackendNotApplicableError):
            run_scenario("example-quickstart", quick=True, target_mse=1e-3)
        with pytest.raises(BackendNotApplicableError):
            run_scenario("poisson-adaptive", quick=True,
                         target_mse=1e-3, cost_budget=10.0)

    def test_cli_parses_budget_flags(self):
        from repro.__main__ import build_parser

        args = build_parser().parse_args(
            ["run", "poisson-adaptive", "--target-mse", "2e-4"]
        )
        assert args.target_mse == 2e-4 and args.budget is None
        args = build_parser().parse_args(
            ["run", "poisson-adaptive", "--budget", "30.0"]
        )
        assert args.budget == 30.0 and args.target_mse is None

    def test_manifest_allocation_validation(self):
        from repro.experiments import (
            ExperimentSpec,
            ManifestError,
            build_manifest,
            validate_manifest,
        )

        spec = ExperimentSpec(name="t", driver="sequential")
        manifest = build_manifest(spec, results={"value": 1.0}, wall_time_s=0.1)
        assert manifest["schema_version"] == 5
        assert manifest["allocation"] == {"policy": "fixed"}
        validate_manifest(manifest)

        for bad in (
            {},                                  # no policy
            {"policy": 3},                       # wrong type
            {"policy": "adaptive", "rounds": "x"},      # rounds not a list
            {"policy": "adaptive", "rounds": [[1, 2]]}, # entries not objects
            {"policy": "adaptive", "rounds": [{"round": 0}]},  # missing keys
        ):
            broken = dict(manifest, allocation=bad)
            with pytest.raises(ManifestError):
                validate_manifest(broken)

    def test_adaptive_scenario_quick_records_trajectory(self, tmp_path):
        from repro.experiments import run_scenario, validate_manifest

        run = run_scenario("poisson-adaptive", quick=True, out_dir=tmp_path)
        validate_manifest(run.manifest)
        allocation = run.manifest["allocation"]
        assert allocation["policy"] == "adaptive"
        assert len(allocation["rounds"]) >= 2
        assert run.payload["num_allocation_rounds"] == len(allocation["rounds"])
        # the realized counts grow monotonically along the trajectory
        collected = [r["collected"] for r in allocation["rounds"]]
        for earlier, later in zip(collected, collected[1:]):
            assert all(b >= a for a, b in zip(earlier, later))
