"""Transport backends: simulated/multiprocess parity, mp smoke, plumbing.

Covers the transport abstraction introduced for the parallel MLMCMC machine:

* the simulated backend is untouched by the refactor (explicit
  ``backend="simulated"`` is bit-identical to the default, and seeded runs
  stay deterministic),
* the multiprocess backend runs the same role machine on real OS processes
  and satisfies the same collection targets,
* the failure modes fixed alongside: missing level reports fail loudly, and
  disabled tracing yields NaN utilization instead of a fake 0.0.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.experiments import get_scenario, run_scenario
from repro.experiments.runner import BackendNotApplicableError
from repro.models.gaussian import GaussianHierarchyFactory
from repro.parallel import ConstantCostModel, ParallelMLMCMCSampler
from repro.parallel.mp import MultiprocessWorld
from repro.parallel.trace import TraceRecorder
from repro.parallel.transport import RankProcess


@pytest.fixture(scope="module")
def factory():
    return GaussianHierarchyFactory(dim=2, num_levels=3, subsampling=3)


def _sampler(factory, **overrides):
    options = dict(
        num_samples=[60, 24, 10],
        num_ranks=10,
        cost_model=ConstantCostModel([0.01, 0.04, 0.16]),
        seed=5,
    )
    options.update(overrides)
    return ParallelMLMCMCSampler(factory, **options)


# ----------------------------------------------------------------------------
class TestSimulatedBackendParity:
    def test_explicit_simulated_backend_is_bit_identical_to_default(self, factory):
        default = _sampler(factory).run()
        explicit = _sampler(factory, backend="simulated").run()
        np.testing.assert_array_equal(default.mean, explicit.mean)
        assert default.virtual_time == explicit.virtual_time
        assert default.samples_per_level == explicit.samples_per_level
        assert default.messages_sent == explicit.messages_sent
        assert default.backend == explicit.backend == "simulated"

    def test_seeded_simulated_run_is_deterministic(self, factory):
        first = _sampler(factory).run()
        second = _sampler(factory).run()
        np.testing.assert_array_equal(first.mean, second.mean)
        assert first.virtual_time == second.virtual_time

    def test_unknown_backend_rejected(self, factory):
        with pytest.raises(ValueError, match="backend"):
            _sampler(factory, backend="mpi")


# ----------------------------------------------------------------------------
class TestMultiprocessBackend:
    @pytest.fixture(scope="class")
    def mp_result(self, factory):
        return _sampler(factory, backend="multiprocess").run()

    def test_completes_and_meets_targets(self, mp_result):
        assert mp_result.backend == "multiprocess"
        for level, target in enumerate([60, 24, 10]):
            assert len(mp_result.corrections[level]) >= target
        assert np.all(np.isfinite(mp_result.mean))
        assert mp_result.mean.shape == (2,)

    def test_real_wall_clock_and_trace(self, mp_result):
        # Real seconds, not virtual: the run took measurable wall time and
        # the trace carries model-evaluation intervals with real durations.
        assert mp_result.wall_time_s > 0
        assert mp_result.virtual_time > 0
        eval_events = mp_result.trace.events(["model_eval", "burnin"])
        assert eval_events, "no real-timed compute intervals recorded"
        assert all(e.end >= e.start for e in eval_events)
        utilization = mp_result.worker_utilization()
        assert 0.0 <= utilization <= 1.0

    def test_role_state_harvested_from_children(self, mp_result):
        # Controller/worker/phonebook state lives in child processes; the
        # driver-side twins must have absorbed it.
        assert sum(mp_result.samples_per_level.values()) > 0
        assert mp_result.controller_assignments
        assert all(history for history in mp_result.controller_assignments.values())
        assert mp_result.messages_sent > 0
        assert mp_result.events_processed > 0

    def test_evaluation_stats_merged_across_ranks(self, mp_result):
        assert set(mp_result.evaluation_stats), "no per-level stats harvested"
        for level, stats in mp_result.evaluation_stats.items():
            assert stats.log_density_evaluations > 0, level
        # density evaluations track the generated chain samples
        evals = mp_result.model_evaluations
        for level, generated in mp_result.samples_per_level.items():
            assert evals.get(level, 0) >= generated

    def test_mp_estimate_statistically_consistent(self, factory, mp_result):
        exact = factory.exact_mean()
        # Short chains: generous tolerance, this is a smoke check that the
        # machine assembled a sane telescoping estimate, not a precision test.
        assert np.linalg.norm(mp_result.mean - exact) < 1.5


# ----------------------------------------------------------------------------
class TestFailureModes:
    def test_missing_level_report_fails_loudly(self, factory):
        class DroppingSampler(ParallelMLMCMCSampler):
            """Simulates a level whose collectors never report."""

            def build_world(self):
                world, root, phonebook = super().build_world()
                inner = root.run

                def run():
                    yield from inner()
                    root.collected.pop(1, None)

                root.run = run
                return world, root, phonebook

        sampler = DroppingSampler(
            factory,
            num_samples=[30, 12, 6],
            num_ranks=10,
            cost_model=ConstantCostModel([0.01, 0.04, 0.16]),
            seed=3,
        )
        with pytest.raises(RuntimeError, match=r"level\(s\) \[1\]"):
            sampler.run()

    def test_disabled_tracing_yields_nan_utilization(self, factory):
        result = _sampler(factory, trace_enabled=False).run()
        assert math.isnan(result.worker_utilization())
        assert math.isnan(result.summary()["worker_utilization"])
        # the estimate itself is unaffected by tracing
        assert np.all(np.isfinite(result.mean))


# ----------------------------------------------------------------------------
class TestExperimentPlumbing:
    def test_parallel_backend_override_changes_spec_identity(self):
        spec = get_scenario("poisson-parallel")
        resolved = spec.resolved(parallel_backend="multiprocess")
        assert resolved.parallel == {"backend": "multiprocess"}
        assert resolved.hash() != spec.resolved().hash()
        # same-backend override keeps backend-specific options
        from repro.experiments import ExperimentSpec

        with_options = ExperimentSpec(
            name="x", driver="parallel",
            parallel={"backend": "multiprocess", "options": {"join_timeout": 10.0}},
        )
        same = with_options.resolved(parallel_backend="multiprocess")
        assert same.parallel["options"] == {"join_timeout": 10.0}
        other = with_options.resolved(parallel_backend="simulated")
        assert other.parallel == {"backend": "simulated"}

    def test_parallel_backend_rejected_for_non_parallel_drivers(self):
        for name in ("table3-poisson-multilevel", "example-scaling-study", "fem-hotpath"):
            with pytest.raises(BackendNotApplicableError, match="parallel"):
                run_scenario(name, quick=True, parallel_backend="multiprocess")

    def test_manifest_records_simulated_default_for_parallel_driver(self, tmp_path):
        run = run_scenario("example-load-balancing", quick=True, out_dir=tmp_path)
        assert run.manifest["parallel_backend"] == "simulated"
        assert run.payload["parallel_backend"] == "simulated"
        assert run.manifest["results"]["wall_time_s"] >= 0

    def test_manifest_records_multiprocess_run(self, tmp_path):
        run = run_scenario(
            "poisson-parallel",
            quick=True,
            parallel_backend="multiprocess",
            out_dir=tmp_path,
        )
        assert run.manifest["parallel_backend"] == "multiprocess"
        assert run.payload["parallel_backend"] == "multiprocess"
        assert run.raw.backend == "multiprocess"
        # per-level evaluation stats were harvested from the child processes
        assert run.manifest["evaluations"]
        assert all(e["log_density_evaluations"] > 0 for e in run.manifest["evaluations"])
        assert (tmp_path / "poisson-parallel.manifest.json").exists()

    def test_non_parallel_manifests_record_null_backend(self, tmp_path):
        run = run_scenario("ablation-subsampling", quick=True, out_dir=tmp_path)
        assert run.manifest["parallel_backend"] is None


# ----------------------------------------------------------------------------
class _FabricProducer(RankProcess):
    """Sends bursts of ndarray payloads, gated by consumer ROUND_DONEs."""

    role = "fabric-producer"

    def __init__(self, rank, consumer_rank, rounds, burst):
        super().__init__(rank)
        self.consumer_rank = consumer_rank
        self.rounds = rounds
        self.burst = burst

    def run(self):
        for round_idx in range(self.rounds):
            for i in range(self.burst):
                payload = np.full(2048, float(round_idx * self.burst + i))
                yield self.send(self.consumer_rank, "DATA", payload)
            yield self.recv("ROUND_DONE")


class _FabricConsumer(RankProcess):
    """Receives the bursts and harvests payload checksums for the driver."""

    role = "fabric-consumer"

    def __init__(self, rank, producer_rank, rounds, burst):
        super().__init__(rank)
        self.producer_rank = producer_rank
        self.rounds = rounds
        self.burst = burst
        self.checksums = []

    def run(self):
        checksums = []
        for _ in range(self.rounds):
            for _ in range(self.burst):
                message = yield self.recv("DATA")
                checksums.append(float(message.payload.sum()))
            yield self.send(self.producer_rank, "ROUND_DONE")
        self.checksums = checksums

    def harvest(self):
        return {"checksums": self.checksums}


class TestWireFabric:
    """Coalescing, the shared-memory lane and the byte-accounting contract."""

    ROUNDS, BURST = 2, 8

    def _run_world(self, *, trace_enabled, shm_threshold_bytes):
        world = MultiprocessWorld(
            trace=TraceRecorder(enabled=trace_enabled),
            shm_threshold_bytes=shm_threshold_bytes,
        )
        consumer = _FabricConsumer(1, 0, self.ROUNDS, self.BURST)
        world.add_process(_FabricProducer(0, 1, self.ROUNDS, self.BURST))
        world.add_process(consumer)
        world.run()
        expected = [
            2048.0 * n for n in range(self.ROUNDS * self.BURST)
        ]
        assert consumer.checksums == expected, "payloads corrupted in transit"
        return world

    def test_shm_lane_carries_large_coalesced_batches(self):
        # 16 KiB float64 payloads against a 4 KiB threshold: every flushed
        # batch must ride the shared-memory lane, and the payloads must
        # survive the slab round-trip bitwise (checksums checked above).
        world = self._run_world(trace_enabled=True, shm_threshold_bytes=4096)
        wire = world.wire_summary()
        assert wire["shm_messages"] > 0
        assert wire["shm_bytes"] > 2048 * 8
        assert wire["oob_arrays"] >= self.ROUNDS * self.BURST

    def test_bursts_coalesce_into_batches(self):
        world = self._run_world(trace_enabled=True, shm_threshold_bytes=None)
        wire = world.wire_summary()
        assert wire["coalesced_batches"] > 0
        assert wire["coalesced_messages"] > wire["coalesced_batches"]
        assert wire["shm_messages"] == 0  # lane disabled
        summary = world.summary()
        assert summary["bytes_sent"] > 0
        for rank in (0, 1):
            assert summary[f"rank{rank}_bytes_sent"] > 0
            assert summary[f"rank{rank}_bytes_received"] > 0

    def test_byte_accounting_nan_when_tracing_off(self):
        world = self._run_world(trace_enabled=False, shm_threshold_bytes=4096)
        assert all(math.isnan(v) for v in world.wire_summary().values())
        summary = world.summary()
        assert math.isnan(summary["bytes_sent"])
        assert math.isnan(summary["rank0_bytes_sent"])
        assert math.isnan(summary["rank1_bytes_received"])
