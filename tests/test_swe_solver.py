"""Tests for the shallow-water substrate: state, fluxes, FV solver, bathymetry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.swe.bathymetry import (
    depth_averaged_bathymetry,
    smooth_bathymetry,
    tohoku_like_bathymetry,
)
from repro.swe.fv2d import ShallowWaterSolver2D
from repro.swe.riemann import hll_flux, physical_flux_x, rusanov_flux
from repro.swe.state import GRAVITY, ShallowWaterState


def _flat_solver(n=20, depth=100.0, extent=(0.0, 1000.0, 0.0, 1000.0), **kwargs):
    bathy = np.full((n, n), -depth)
    return ShallowWaterSolver2D(n, n, extent, bathy, **kwargs)


class TestState:
    def test_lake_at_rest_construction(self):
        bathy = np.array([[-10.0, -5.0], [2.0, -1.0]])
        state = ShallowWaterState.lake_at_rest(bathy)
        np.testing.assert_allclose(state.h, [[10.0, 5.0], [0.0, 1.0]])
        assert state.total_momentum() == (0.0, 0.0)
        # free surface is zero on wet cells and equals bathymetry on dry cells
        assert state.free_surface[0, 0] == pytest.approx(0.0)
        assert state.free_surface[1, 0] == pytest.approx(2.0)

    def test_wet_mask_and_velocities(self):
        state = ShallowWaterState(
            h=np.array([[1.0, 0.0]]),
            hu=np.array([[2.0, 0.0]]),
            hv=np.array([[-1.0, 0.0]]),
            b=np.array([[-1.0, 1.0]]),
        )
        u, v = state.velocities()
        assert u[0, 0] == pytest.approx(2.0)
        assert v[0, 0] == pytest.approx(-1.0)
        assert u[0, 1] == 0.0 and not state.wet[0, 1]

    def test_max_wave_speed(self):
        state = ShallowWaterState.lake_at_rest(np.full((3, 3), -100.0))
        assert state.max_wave_speed() == pytest.approx(np.sqrt(GRAVITY * 100.0), rel=1e-12)
        dry = ShallowWaterState.lake_at_rest(np.full((3, 3), 10.0))
        assert dry.max_wave_speed() == 0.0

    def test_enforce_positivity(self):
        state = ShallowWaterState(
            h=np.array([[-1e-12, 1.0]]),
            hu=np.array([[5.0, 1.0]]),
            hv=np.array([[5.0, 1.0]]),
            b=np.array([[0.0, -2.0]]),
        )
        state.enforce_positivity()
        assert state.h[0, 0] == 0.0
        assert state.hu[0, 0] == 0.0 and state.hv[0, 0] == 0.0
        assert state.hu[0, 1] == 1.0

    def test_inconsistent_shapes_rejected(self):
        with pytest.raises(ValueError):
            ShallowWaterState(
                h=np.zeros((2, 2)), hu=np.zeros((2, 3)), hv=np.zeros((2, 2)), b=np.zeros((2, 2))
            )

    def test_copy_is_deep(self):
        state = ShallowWaterState.lake_at_rest(np.full((2, 2), -10.0))
        clone = state.copy()
        clone.h[0, 0] = 99.0
        assert state.h[0, 0] == 10.0


class TestRiemannFluxes:
    def test_physical_flux_at_rest(self):
        h = np.array([2.0])
        flux_h, flux_hu, flux_hv = physical_flux_x(h, np.zeros(1), np.zeros(1))
        assert flux_h[0] == 0.0
        assert flux_hu[0] == pytest.approx(0.5 * GRAVITY * 4.0)
        assert flux_hv[0] == 0.0

    @pytest.mark.parametrize("flux", [rusanov_flux, hll_flux])
    def test_consistency_with_physical_flux(self, flux):
        # Equal left/right states: the numerical flux must equal the physical flux.
        q = (np.array([2.0]), np.array([1.0]), np.array([0.5]))
        numerical = flux(q, q)
        physical = physical_flux_x(*q)
        for num, phys in zip(numerical, physical):
            np.testing.assert_allclose(num, phys, rtol=1e-12)

    @pytest.mark.parametrize("flux", [rusanov_flux, hll_flux])
    def test_dam_break_flux_direction(self, flux):
        # Higher water on the left: mass flux must be positive (to the right).
        q_l = (np.array([2.0]), np.array([0.0]), np.array([0.0]))
        q_r = (np.array([1.0]), np.array([0.0]), np.array([0.0]))
        flux_h, _, _ = flux(q_l, q_r)
        assert flux_h[0] > 0

    @pytest.mark.parametrize("flux", [rusanov_flux, hll_flux])
    def test_dry_states_no_nan(self, flux):
        q_l = (np.array([0.0]), np.array([0.0]), np.array([0.0]))
        q_r = (np.array([1.0]), np.array([0.0]), np.array([0.0]))
        values = flux(q_l, q_r)
        assert all(np.all(np.isfinite(v)) for v in values)


class TestBathymetry:
    def test_tohoku_like_profile_features(self):
        field = tohoku_like_bathymetry()
        x0, x1, y0, y1 = field.extent
        # deep ocean in the middle/east, dry land in the far west, trench deeper than plain
        assert field(np.array([0.0]), np.array([0.0]))[0] < -1000.0
        assert field(np.array([x0 + 1e3]), np.array([0.0]))[0] > 0.0
        trench = field(np.array([60e3]), np.array([0.0]))[0]
        plain = field(np.array([-20e3]), np.array([0.0]))[0]
        assert trench < plain

    def test_on_grid_shape(self):
        field = tohoku_like_bathymetry()
        assert field.on_grid(20, 30).shape == (20, 30)

    def test_smoothing_reduces_roughness_preserves_mean(self, rng):
        field = tohoku_like_bathymetry().on_grid(40, 40)
        field = field + rng.normal(0, 50.0, size=field.shape)
        smoothed = smooth_bathymetry(field, passes=4)
        assert smoothed.shape == field.shape
        rough_before = np.abs(np.diff(field, axis=0)).mean()
        rough_after = np.abs(np.diff(smoothed, axis=0)).mean()
        assert rough_after < rough_before
        assert abs(smoothed.mean() - field.mean()) < 30.0

    def test_zero_smoothing_passes_identity(self):
        field = tohoku_like_bathymetry().on_grid(10, 10)
        np.testing.assert_allclose(smooth_bathymetry(field, passes=0), field)

    def test_depth_average_is_constant(self):
        field = tohoku_like_bathymetry().on_grid(30, 30)
        averaged = depth_averaged_bathymetry(field)
        assert np.unique(averaged).size == 1
        assert averaged[0, 0] < 0.0


class TestShallowWaterSolver:
    def test_lake_at_rest_is_preserved(self):
        # Well-balancedness over non-trivial bathymetry (the key solver property).
        field = tohoku_like_bathymetry()
        bathy = field.on_grid(24, 24)
        solver = ShallowWaterSolver2D(24, 24, field.extent, bathy)
        state = solver.initial_state()
        reference = state.h.copy()
        result = solver.run(state, end_time=300.0)
        assert np.abs(result.state.h - reference).max() < 1e-8
        assert np.abs(result.state.hu).max() < 1e-8

    def test_mass_conservation_flat_bottom(self):
        # Domain large enough that the wave cannot reach the open boundaries
        # within the simulated time, so the total water volume must be conserved.
        solver = _flat_solver(n=24, depth=100.0, extent=(0.0, 100e3, 0.0, 100e3))
        displacement = np.zeros((24, 24))
        displacement[10:14, 10:14] = 1.0
        state = solver.initial_state(displacement)
        mass_before = state.total_mass()
        result = solver.run(state, end_time=200.0)
        assert result.state.total_mass() == pytest.approx(mass_before, rel=1e-10)

    def test_positivity_of_depth(self):
        field = tohoku_like_bathymetry()
        bathy = field.on_grid(20, 20)
        solver = ShallowWaterSolver2D(20, 20, field.extent, bathy)
        displacement = 5.0 * np.exp(
            -((np.arange(20)[:, None] - 12) ** 2 + (np.arange(20)[None, :] - 10) ** 2) / 8.0
        )
        state = solver.initial_state(displacement)
        result = solver.run(state, end_time=600.0)
        assert result.state.h.min() >= 0.0
        assert np.all(np.isfinite(result.state.h))

    def test_wave_propagates_at_gravity_wave_speed(self):
        depth = 400.0
        solver = _flat_solver(n=50, depth=depth, extent=(0.0, 100e3, 0.0, 100e3))
        x, y = solver.cell_centers()
        displacement = 1.0 * np.exp(-((x - 50e3) ** 2 + (y - 50e3) ** 2) / (2 * (5e3) ** 2))
        state = solver.initial_state(displacement)
        from repro.swe.gauges import Gauge

        gauge = Gauge("probe", 80e3, 50e3)
        result = solver.run(state, end_time=800.0, gauges=[gauge])
        # The crest of the gravity wave travels at sqrt(g * depth); the probe is
        # 30 km from the source centre.
        peak_arrival = result.gauge_records[0].time_of_max
        expected = 30e3 / np.sqrt(GRAVITY * depth)
        assert peak_arrival == pytest.approx(expected, rel=0.35)

    def test_gauge_recording_and_observables(self):
        solver = _flat_solver(n=30, depth=200.0, extent=(0.0, 60e3, 0.0, 60e3))
        x, y = solver.cell_centers()
        displacement = 2.0 * np.exp(-((x - 30e3) ** 2 + (y - 30e3) ** 2) / (2 * (4e3) ** 2))
        state = solver.initial_state(displacement)
        from repro.swe.gauges import Gauge, wave_observables

        gauges = [Gauge("a", 45e3, 30e3), Gauge("b", 30e3, 45e3)]
        result = solver.run(state, end_time=400.0, gauges=gauges)
        observables = wave_observables(result.gauge_records)
        assert observables.shape == (4,)
        assert observables[0] > 0.01 and observables[1] > 0.01  # both buoys see the wave
        assert observables[2] > 0 and observables[3] > 0
        assert result.num_timesteps > 0
        assert result.dof_updates == result.num_timesteps * 30 * 30 * 4

    def test_cfl_validation(self):
        with pytest.raises(ValueError):
            _flat_solver(cfl=1.5)
        with pytest.raises(ValueError):
            ShallowWaterSolver2D(4, 4, (0, 1, 0, 1), np.zeros((3, 3)))

    def test_hll_flux_option(self):
        solver = _flat_solver(n=16, flux="hll")
        state = solver.initial_state()
        result = solver.run(state, end_time=10.0)
        assert np.all(np.isfinite(result.state.h))

    @given(amplitude=st.floats(0.1, 5.0), size=st.integers(10, 24))
    @settings(max_examples=8, deadline=None)
    def test_property_positivity_random_bumps(self, amplitude, size):
        solver = _flat_solver(n=size, depth=50.0, extent=(0.0, 10e3, 0.0, 10e3))
        x, y = solver.cell_centers()
        displacement = amplitude * np.exp(
            -((x - 5e3) ** 2 + (y - 5e3) ** 2) / (2 * (1e3) ** 2)
        )
        state = solver.initial_state(displacement)
        result = solver.run(state, end_time=50.0)
        assert result.state.h.min() >= 0.0
        assert np.all(np.isfinite(result.state.free_surface))
