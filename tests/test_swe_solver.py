"""Tests for the shallow-water substrate: state, fluxes, FV solver, bathymetry."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.swe.bathymetry import (
    depth_averaged_bathymetry,
    smooth_bathymetry,
    tohoku_like_bathymetry,
)
from repro.swe.fv2d import ShallowWaterSolver2D
from repro.swe.gauges import Gauge, wave_observables
from repro.swe.riemann import hll_flux, physical_flux_x, rusanov_flux
from repro.swe.state import GRAVITY, ShallowWaterEnsembleState, ShallowWaterState


def _flat_solver(n=20, depth=100.0, extent=(0.0, 1000.0, 0.0, 1000.0), **kwargs):
    bathy = np.full((n, n), -depth)
    return ShallowWaterSolver2D(n, n, extent, bathy, **kwargs)


class TestState:
    def test_lake_at_rest_construction(self):
        bathy = np.array([[-10.0, -5.0], [2.0, -1.0]])
        state = ShallowWaterState.lake_at_rest(bathy)
        np.testing.assert_allclose(state.h, [[10.0, 5.0], [0.0, 1.0]])
        assert state.total_momentum() == (0.0, 0.0)
        # free surface is zero on wet cells and equals bathymetry on dry cells
        assert state.free_surface[0, 0] == pytest.approx(0.0)
        assert state.free_surface[1, 0] == pytest.approx(2.0)

    def test_wet_mask_and_velocities(self):
        state = ShallowWaterState(
            h=np.array([[1.0, 0.0]]),
            hu=np.array([[2.0, 0.0]]),
            hv=np.array([[-1.0, 0.0]]),
            b=np.array([[-1.0, 1.0]]),
        )
        u, v = state.velocities()
        assert u[0, 0] == pytest.approx(2.0)
        assert v[0, 0] == pytest.approx(-1.0)
        assert u[0, 1] == 0.0 and not state.wet[0, 1]

    def test_max_wave_speed(self):
        state = ShallowWaterState.lake_at_rest(np.full((3, 3), -100.0))
        assert state.max_wave_speed() == pytest.approx(np.sqrt(GRAVITY * 100.0), rel=1e-12)
        dry = ShallowWaterState.lake_at_rest(np.full((3, 3), 10.0))
        assert dry.max_wave_speed() == 0.0

    def test_enforce_positivity(self):
        state = ShallowWaterState(
            h=np.array([[-1e-12, 1.0]]),
            hu=np.array([[5.0, 1.0]]),
            hv=np.array([[5.0, 1.0]]),
            b=np.array([[0.0, -2.0]]),
        )
        state.enforce_positivity()
        assert state.h[0, 0] == 0.0
        assert state.hu[0, 0] == 0.0 and state.hv[0, 0] == 0.0
        assert state.hu[0, 1] == 1.0

    def test_inconsistent_shapes_rejected(self):
        with pytest.raises(ValueError):
            ShallowWaterState(
                h=np.zeros((2, 2)), hu=np.zeros((2, 3)), hv=np.zeros((2, 2)), b=np.zeros((2, 2))
            )

    def test_copy_is_deep(self):
        state = ShallowWaterState.lake_at_rest(np.full((2, 2), -10.0))
        clone = state.copy()
        clone.h[0, 0] = 99.0
        assert state.h[0, 0] == 10.0


class TestRiemannFluxes:
    def test_physical_flux_at_rest(self):
        h = np.array([2.0])
        flux_h, flux_hu, flux_hv = physical_flux_x(h, np.zeros(1), np.zeros(1))
        assert flux_h[0] == 0.0
        assert flux_hu[0] == pytest.approx(0.5 * GRAVITY * 4.0)
        assert flux_hv[0] == 0.0

    @pytest.mark.parametrize("flux", [rusanov_flux, hll_flux])
    def test_consistency_with_physical_flux(self, flux):
        # Equal left/right states: the numerical flux must equal the physical flux.
        q = (np.array([2.0]), np.array([1.0]), np.array([0.5]))
        numerical = flux(q, q)
        physical = physical_flux_x(*q)
        for num, phys in zip(numerical, physical):
            np.testing.assert_allclose(num, phys, rtol=1e-12)

    @pytest.mark.parametrize("flux", [rusanov_flux, hll_flux])
    def test_dam_break_flux_direction(self, flux):
        # Higher water on the left: mass flux must be positive (to the right).
        q_l = (np.array([2.0]), np.array([0.0]), np.array([0.0]))
        q_r = (np.array([1.0]), np.array([0.0]), np.array([0.0]))
        flux_h, _, _ = flux(q_l, q_r)
        assert flux_h[0] > 0

    @pytest.mark.parametrize("flux", [rusanov_flux, hll_flux])
    def test_dry_states_no_nan(self, flux):
        q_l = (np.array([0.0]), np.array([0.0]), np.array([0.0]))
        q_r = (np.array([1.0]), np.array([0.0]), np.array([0.0]))
        values = flux(q_l, q_r)
        assert all(np.all(np.isfinite(v)) for v in values)


class TestBathymetry:
    def test_tohoku_like_profile_features(self):
        field = tohoku_like_bathymetry()
        x0, x1, y0, y1 = field.extent
        # deep ocean in the middle/east, dry land in the far west, trench deeper than plain
        assert field(np.array([0.0]), np.array([0.0]))[0] < -1000.0
        assert field(np.array([x0 + 1e3]), np.array([0.0]))[0] > 0.0
        trench = field(np.array([60e3]), np.array([0.0]))[0]
        plain = field(np.array([-20e3]), np.array([0.0]))[0]
        assert trench < plain

    def test_on_grid_shape(self):
        field = tohoku_like_bathymetry()
        assert field.on_grid(20, 30).shape == (20, 30)

    def test_smoothing_reduces_roughness_preserves_mean(self, rng):
        field = tohoku_like_bathymetry().on_grid(40, 40)
        field = field + rng.normal(0, 50.0, size=field.shape)
        smoothed = smooth_bathymetry(field, passes=4)
        assert smoothed.shape == field.shape
        rough_before = np.abs(np.diff(field, axis=0)).mean()
        rough_after = np.abs(np.diff(smoothed, axis=0)).mean()
        assert rough_after < rough_before
        assert abs(smoothed.mean() - field.mean()) < 30.0

    def test_zero_smoothing_passes_identity(self):
        field = tohoku_like_bathymetry().on_grid(10, 10)
        np.testing.assert_allclose(smooth_bathymetry(field, passes=0), field)

    def test_depth_average_is_constant(self):
        field = tohoku_like_bathymetry().on_grid(30, 30)
        averaged = depth_averaged_bathymetry(field)
        assert np.unique(averaged).size == 1
        assert averaged[0, 0] < 0.0


class TestShallowWaterSolver:
    def test_lake_at_rest_is_preserved(self):
        # Well-balancedness over non-trivial bathymetry (the key solver property).
        field = tohoku_like_bathymetry()
        bathy = field.on_grid(24, 24)
        solver = ShallowWaterSolver2D(24, 24, field.extent, bathy)
        state = solver.initial_state()
        reference = state.h.copy()
        result = solver.run(state, end_time=300.0)
        assert np.abs(result.state.h - reference).max() < 1e-8
        assert np.abs(result.state.hu).max() < 1e-8

    def test_mass_conservation_flat_bottom(self):
        # Domain large enough that the wave cannot reach the open boundaries
        # within the simulated time, so the total water volume must be conserved.
        solver = _flat_solver(n=24, depth=100.0, extent=(0.0, 100e3, 0.0, 100e3))
        displacement = np.zeros((24, 24))
        displacement[10:14, 10:14] = 1.0
        state = solver.initial_state(displacement)
        mass_before = state.total_mass()
        result = solver.run(state, end_time=200.0)
        assert result.state.total_mass() == pytest.approx(mass_before, rel=1e-10)

    def test_positivity_of_depth(self):
        field = tohoku_like_bathymetry()
        bathy = field.on_grid(20, 20)
        solver = ShallowWaterSolver2D(20, 20, field.extent, bathy)
        displacement = 5.0 * np.exp(
            -((np.arange(20)[:, None] - 12) ** 2 + (np.arange(20)[None, :] - 10) ** 2) / 8.0
        )
        state = solver.initial_state(displacement)
        result = solver.run(state, end_time=600.0)
        assert result.state.h.min() >= 0.0
        assert np.all(np.isfinite(result.state.h))

    def test_wave_propagates_at_gravity_wave_speed(self):
        depth = 400.0
        solver = _flat_solver(n=50, depth=depth, extent=(0.0, 100e3, 0.0, 100e3))
        x, y = solver.cell_centers()
        displacement = 1.0 * np.exp(-((x - 50e3) ** 2 + (y - 50e3) ** 2) / (2 * (5e3) ** 2))
        state = solver.initial_state(displacement)
        from repro.swe.gauges import Gauge

        gauge = Gauge("probe", 80e3, 50e3)
        result = solver.run(state, end_time=800.0, gauges=[gauge])
        # The crest of the gravity wave travels at sqrt(g * depth); the probe is
        # 30 km from the source centre.
        peak_arrival = result.gauge_records[0].time_of_max
        expected = 30e3 / np.sqrt(GRAVITY * depth)
        assert peak_arrival == pytest.approx(expected, rel=0.35)

    def test_gauge_recording_and_observables(self):
        solver = _flat_solver(n=30, depth=200.0, extent=(0.0, 60e3, 0.0, 60e3))
        x, y = solver.cell_centers()
        displacement = 2.0 * np.exp(-((x - 30e3) ** 2 + (y - 30e3) ** 2) / (2 * (4e3) ** 2))
        state = solver.initial_state(displacement)
        from repro.swe.gauges import Gauge, wave_observables

        gauges = [Gauge("a", 45e3, 30e3), Gauge("b", 30e3, 45e3)]
        result = solver.run(state, end_time=400.0, gauges=gauges)
        observables = wave_observables(result.gauge_records)
        assert observables.shape == (4,)
        assert observables[0] > 0.01 and observables[1] > 0.01  # both buoys see the wave
        assert observables[2] > 0 and observables[3] > 0
        assert result.num_timesteps > 0
        assert result.dof_updates == result.num_timesteps * 30 * 30 * 4

    def test_cfl_validation(self):
        with pytest.raises(ValueError):
            _flat_solver(cfl=1.5)
        with pytest.raises(ValueError):
            ShallowWaterSolver2D(4, 4, (0, 1, 0, 1), np.zeros((3, 3)))

    def test_hll_flux_option(self):
        solver = _flat_solver(n=16, flux="hll")
        state = solver.initial_state()
        result = solver.run(state, end_time=10.0)
        assert np.all(np.isfinite(result.state.h))

    @given(amplitude=st.floats(0.1, 5.0), size=st.integers(10, 24))
    @settings(max_examples=8, deadline=None)
    def test_property_positivity_random_bumps(self, amplitude, size):
        solver = _flat_solver(n=size, depth=50.0, extent=(0.0, 10e3, 0.0, 10e3))
        x, y = solver.cell_centers()
        displacement = amplitude * np.exp(
            -((x - 5e3) ** 2 + (y - 5e3) ** 2) / (2 * (1e3) ** 2)
        )
        state = solver.initial_state(displacement)
        result = solver.run(state, end_time=50.0)
        assert result.state.h.min() >= 0.0
        assert np.all(np.isfinite(result.state.free_surface))


class TestEnsembleSolver:
    """The batched solve path: one array program, member-identical results."""

    @staticmethod
    def _setup(n=20, flux="rusanov"):
        field = tohoku_like_bathymetry()
        solver = ShallowWaterSolver2D(n, n, field.extent, field.on_grid(n, n), flux=flux)
        x, y = solver.cell_centers()
        centers = [(0.0, 0.0), (30e3, -20e3), (-25e3, 40e3)]
        displacements = np.stack(
            [
                5.0 * np.exp(-0.5 * ((x - cx) ** 2 + (y - cy) ** 2) / 30e3**2)
                for cx, cy in centers
            ]
        )
        gauges = [Gauge("a", 90e3, 40e3), Gauge("b", 110e3, -60e3)]
        return solver, displacements, gauges

    def test_ensemble_state_shapes_and_members(self):
        solver, displacements, _ = self._setup()
        ensemble = solver.initial_ensemble(displacements)
        assert ensemble.batch_size == 3
        assert ensemble.grid_shape == (20, 20)
        member = ensemble.member(1)
        np.testing.assert_array_equal(member.h, ensemble.h[1])
        rebuilt = ShallowWaterEnsembleState.from_states(
            [ensemble.member(i) for i in range(3)]
        )
        np.testing.assert_array_equal(rebuilt.h, ensemble.h)

    def test_member_wise_identical_to_scalar_runs(self):
        solver, displacements, gauges = self._setup()
        ensemble = solver.initial_ensemble(displacements)
        result = solver.run_ensemble(ensemble, end_time=600.0, gauges=gauges)
        observables = result.wave_observables()
        assert observables.shape == (3, 4)
        for m in range(3):
            scalar = solver.run(
                solver.initial_state(displacements[m]), end_time=600.0, gauges=gauges
            )
            # bitwise: every member integrates with its own CFL step through
            # operation-identical kernels
            np.testing.assert_array_equal(result.state.h[m], scalar.state.h)
            np.testing.assert_array_equal(result.state.hu[m], scalar.state.hu)
            np.testing.assert_array_equal(result.max_eta_field[m], scalar.max_eta_field)
            np.testing.assert_array_equal(
                observables[m], wave_observables(scalar.gauge_records)
            )
            assert result.num_timesteps[m] == scalar.num_timesteps
            assert result.simulated_time[m] == scalar.simulated_time
            assert result.dof_updates[m] == scalar.dof_updates
            member = result.member(m)
            assert member.num_timesteps == scalar.num_timesteps
            np.testing.assert_array_equal(
                wave_observables(member.gauge_records),
                wave_observables(scalar.gauge_records),
            )

    def test_generic_kernel_path_matches_scalar_for_hll(self):
        # The hll flux bypasses the fused Rusanov kernels and exercises the
        # generic axis-agnostic step on the ensemble.
        solver, displacements, gauges = self._setup(flux="hll")
        ensemble = solver.initial_ensemble(displacements)
        result = solver.run_ensemble(ensemble, end_time=300.0, gauges=gauges)
        for m in range(3):
            scalar = solver.run(
                solver.initial_state(displacements[m]), end_time=300.0, gauges=gauges
            )
            np.testing.assert_array_equal(result.state.h[m], scalar.state.h)

    def test_sync_min_time_stepping_synchronizes_members(self):
        solver, displacements, _ = self._setup()
        ensemble = solver.initial_ensemble(displacements)
        result = solver.run_ensemble(ensemble, end_time=300.0, time_stepping="sync-min")
        # all members share the ensemble-minimum dt, so their clocks agree
        assert np.all(result.simulated_time == result.simulated_time[0])
        assert np.all(result.num_timesteps == result.num_timesteps[0])
        with pytest.raises(ValueError):
            solver.run_ensemble(ensemble, end_time=10.0, time_stepping="bogus")

    def test_lake_at_rest_preserved_for_the_whole_ensemble(self):
        solver, _, _ = self._setup()
        ensemble = ShallowWaterEnsembleState.lake_at_rest(solver.bathymetry, 4)
        reference = ensemble.h.copy()
        result = solver.run_ensemble(ensemble, end_time=300.0)
        assert np.abs(result.state.h - reference).max() < 1e-8
        assert np.abs(result.state.hu).max() < 1e-8

    def test_mismatched_dry_tolerance_falls_back_to_generic_kernels(self):
        # A state whose dry tolerance differs from the solver's breaks the
        # fused kernels' zero-dry-momentum invariant; run_ensemble must detect
        # this and stay member-identical to scalar runs via the generic path.
        field = tohoku_like_bathymetry()
        solver = ShallowWaterSolver2D(
            16, 16, field.extent, field.on_grid(16, 16), dry_tolerance=0.05
        )
        x, y = solver.cell_centers()
        displacements = np.stack(
            [5.0 * np.exp(-0.5 * ((x - cx) ** 2 + y**2) / 30e3**2) for cx in (0.0, 20e3)]
        )
        states = [solver.initial_state(d) for d in displacements]
        for state in states:
            state.dry_tolerance = 1e-3  # not the solver's 0.05
        ensemble = ShallowWaterEnsembleState.from_states(states)
        result = solver.run_ensemble(ensemble, end_time=300.0)
        # scalar comparison runs on the same mismatched-tolerance states, so
        # both sides go through identical (generic) kernels
        for m, state in enumerate(states):
            scalar = solver.run(state, end_time=300.0)
            np.testing.assert_array_equal(result.state.h[m], scalar.state.h)
            np.testing.assert_array_equal(result.state.hu[m], scalar.state.hu)

    def test_nonzero_dry_momenta_fall_back_to_generic_kernels(self):
        solver, displacements, _ = self._setup()
        ensemble = solver.initial_ensemble(displacements)
        dry = ensemble.h <= solver.dry_tolerance
        assert np.any(dry), "scenario needs dry land for this regression test"
        ensemble.hu[dry] = 3.0  # violates the invariant the fused path assumes
        result = solver.run_ensemble(ensemble, end_time=300.0)
        for m in range(ensemble.batch_size):
            scalar = solver.run(ensemble.member(m), end_time=300.0)
            np.testing.assert_array_equal(result.state.h[m], scalar.state.h)
            np.testing.assert_array_equal(result.state.hu[m], scalar.state.hu)

    def test_workspace_grows_in_place_across_batch_sizes(self):
        solver, displacements, _ = self._setup()
        for size in (2, 3, 1):
            ensemble = solver.initial_ensemble(np.repeat(displacements[:1], size, axis=0))
            solver.run_ensemble(ensemble, end_time=50.0)
        # one buffer set per solver, sized for the largest batch seen
        assert solver._ensemble_workspace["u"].shape[0] == 3
        solver.release_ensemble_buffers()
        assert not solver._ensemble_workspace

    def test_displacement_shape_validation(self):
        solver, _, _ = self._setup()
        with pytest.raises(ValueError):
            solver.initial_ensemble(np.zeros((3, 5, 5)))
        with pytest.raises(ValueError):
            ShallowWaterEnsembleState.from_states([])
        with pytest.raises(ValueError):
            ShallowWaterEnsembleState(
                h=np.zeros((2, 4, 4)),
                hu=np.zeros((2, 4, 4)),
                hv=np.zeros((2, 4, 4)),
                b=np.zeros((2, 4, 5)),
            )
