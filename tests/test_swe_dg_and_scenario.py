"""Tests for the 1-D ADER-DG solver with subcell limiting and the tsunami scenario."""

from __future__ import annotations

import numpy as np
import pytest

from repro.bayes.likelihood import UnphysicalModelOutput
from repro.swe.dg1d import ADERDGSolver1D
from repro.swe.gauges import Gauge, GaugeRecord, wave_observables
from repro.swe.scenario import LevelConfiguration, SourceParameters, TohokuLikeScenario


class TestADERDG1D:
    def test_constant_state_is_preserved(self):
        solver = ADERDGSolver1D(num_cells=20, domain=(0.0, 10.0), order=2)
        solution = solver.project(lambda x: np.full_like(x, 2.0))
        final, steps = solver.run(solution, end_time=0.5)
        averages = final.cell_averages(solver.weights)
        np.testing.assert_allclose(averages[:, 0], 2.0, atol=1e-10)
        np.testing.assert_allclose(averages[:, 1], 0.0, atol=1e-10)
        assert steps > 0

    def test_smooth_wave_mass_conservation_without_limiter(self):
        solver = ADERDGSolver1D(num_cells=40, domain=(0.0, 10.0), order=2, limiter=False)
        solution = solver.project(lambda x: 1.0 + 0.01 * np.exp(-((x - 5.0) ** 2)))
        mass_before = solution.cell_averages(solver.weights)[:, 0].sum()
        final, _ = solver.run(solution, end_time=0.2)
        mass_after = final.cell_averages(solver.weights)[:, 0].sum()
        assert mass_after == pytest.approx(mass_before, rel=1e-8)

    def test_dam_break_limiter_triggers_and_stays_positive(self):
        solver = ADERDGSolver1D(num_cells=50, domain=(0.0, 10.0), order=2, limiter=True)
        solution = solver.project(lambda x: np.where(x < 5.0, 2.0, 1.0))
        final, _ = solver.run(solution, end_time=0.3)
        averages = final.cell_averages(solver.weights)
        assert solver.total_limited_cells > 0
        assert averages[:, 0].min() > 0.0
        assert np.all(np.isfinite(averages))

    def test_dam_break_without_limiter_is_oscillatory_or_blows_up(self):
        limited = ADERDGSolver1D(num_cells=50, domain=(0.0, 10.0), order=2, limiter=True)
        unlimited = ADERDGSolver1D(num_cells=50, domain=(0.0, 10.0), order=2, limiter=False)
        ic = lambda x: np.where(x < 5.0, 2.0, 1.0)
        sol_lim, _ = limited.run(limited.project(ic), end_time=0.2)
        sol_unlim, _ = unlimited.run(unlimited.project(ic), end_time=0.2)
        # The limited solution stays finite and essentially within [1, 2]; the
        # raw high-order scheme either overshoots more or blows up entirely —
        # exactly the failure mode the a-posteriori limiter exists to catch.
        assert np.all(np.isfinite(sol_lim.coefficients))
        overshoot_lim = sol_lim.coefficients[..., 0].max() - 2.0
        assert overshoot_lim < 0.2
        unlimited_values = sol_unlim.coefficients[..., 0]
        blew_up = not np.all(np.isfinite(unlimited_values))
        overshoot_unlim = np.nanmax(unlimited_values) - 2.0 if not blew_up else np.inf
        assert blew_up or overshoot_unlim >= overshoot_lim - 1e-12

    def test_order_validation(self):
        with pytest.raises(ValueError):
            ADERDGSolver1D(num_cells=10, order=0)

    def test_higher_order_is_more_accurate_on_smooth_data(self):
        # advecting-ish smooth hump; compare orders at identical resolution and time
        def initial(x):
            return 1.0 + 0.05 * np.exp(-((x - 5.0) ** 2) / 0.5)

        errors = {}
        reference_solver = ADERDGSolver1D(num_cells=400, domain=(0.0, 10.0), order=1, limiter=False)
        ref, _ = reference_solver.run(reference_solver.project(initial), end_time=0.05)
        ref_avg = ref.cell_averages(reference_solver.weights)[:, 0].reshape(40, 10).mean(axis=1)
        for order in (1, 2):
            solver = ADERDGSolver1D(num_cells=40, domain=(0.0, 10.0), order=order, limiter=False)
            final, _ = solver.run(solver.project(initial), end_time=0.05)
            avg = final.cell_averages(solver.weights)[:, 0]
            errors[order] = np.abs(avg - ref_avg).max()
        assert errors[2] <= errors[1] * 1.5


class TestGauges:
    def test_record_and_observables(self):
        record = GaugeRecord(gauge=Gauge("g", 0.0, 0.0))
        for t, v in [(0.0, 0.0), (10.0, 0.2), (20.0, 0.5), (30.0, 0.1)]:
            record.append(t, v)
        assert record.max_height == pytest.approx(0.5)
        assert record.time_of_max == pytest.approx(20.0)
        assert record.arrival_time(threshold=0.15) == pytest.approx(10.0)
        assert record.arrival_time(threshold=10.0) == np.inf
        observables = wave_observables([record], time_unit=60.0)
        np.testing.assert_allclose(observables, [0.5, 20.0 / 60.0])

    def test_empty_record(self):
        record = GaugeRecord(gauge=Gauge("g", 0.0, 0.0))
        assert record.max_height == 0.0
        assert record.time_of_max == 0.0


class TestTohokuScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        return TohokuLikeScenario(
            level_configs=(
                LevelConfiguration(0, 16, "constant", False),
                LevelConfiguration(1, 32, "smoothed", True, smoothing_passes=2),
            ),
            end_time=900.0,
        )

    def test_level_bathymetry_treatments(self, scenario):
        constant = scenario.level_bathymetry(0)
        smoothed = scenario.level_bathymetry(1)
        assert np.unique(constant).size == 1
        assert np.unique(smoothed).size > 1

    def test_source_parameters_from_theta(self):
        source = SourceParameters.from_theta(np.array([10.0, -5.0]))
        assert source.x_offset == pytest.approx(10e3)
        assert source.y_offset == pytest.approx(-5e3)
        with pytest.raises(ValueError):
            SourceParameters.from_theta(np.array([1.0, 2.0, 3.0]))

    def test_observables_shape_and_positivity(self, scenario):
        observables = scenario.observe(0, np.array([0.0, 0.0]))
        assert observables.shape == (4,)
        assert observables[0] > 0 and observables[1] > 0

    def test_observables_depend_on_source_location(self, scenario):
        at_centre = scenario.observe(0, np.array([0.0, 0.0]))
        shifted = scenario.observe(0, np.array([40.0, -30.0]))
        assert not np.allclose(at_centre, shifted)

    def test_levels_are_correlated_but_not_identical(self, scenario):
        coarse = scenario.observe(0, np.array([0.0, 0.0]))
        fine = scenario.observe(1, np.array([0.0, 0.0]))
        assert not np.allclose(coarse, fine)
        # both see a wave of comparable magnitude at the buoys
        assert np.sign(coarse[0]) == np.sign(fine[0]) == 1.0

    def test_unphysical_source_on_land(self, scenario):
        with pytest.raises(UnphysicalModelOutput):
            scenario.check_physical(0, SourceParameters(x_offset=-185e3, y_offset=0.0))
        with pytest.raises(UnphysicalModelOutput):
            scenario.check_physical(0, SourceParameters(x_offset=1e9, y_offset=0.0))

    def test_hierarchy_summary(self, scenario):
        rows = scenario.hierarchy_summary()
        assert len(rows) == 2
        assert rows[0]["bathymetry"] == "constant"
        assert rows[1]["num_cells"] == 32

    def test_plan_is_cached_and_resolves_gauges_once(self, scenario):
        plan = scenario.plan(0)
        assert plan is scenario.plan(0)
        assert scenario.solver(0) is plan.solver
        # gauge cells match per-run locate_cell resolution
        assert plan.gauge_cells == tuple(
            plan.solver.locate_cell(g.x, g.y) for g in scenario.gauges
        )
        assert plan.cell_x.shape == (16, 16)

    def test_plan_displacement_batch_rows_equal_scalar(self, scenario):
        plan = scenario.plan(1)
        centers = np.array([[0.0, 0.0], [20e3, -10e3], [-15e3, 30e3]])
        batched = plan.displacement(centers[:, 0], centers[:, 1], 5.0, 30e3)
        assert batched.shape == (3, 32, 32)
        for row, (cx, cy) in zip(batched, centers):
            np.testing.assert_array_equal(row, plan.displacement(cx, cy, 5.0, 30e3))

    def test_observe_batch_rows_equal_scalar_observe(self, scenario):
        thetas = np.array([[0.0, 0.0], [20.0, -15.0], [-10.0, 30.0]])
        for level in (0, 1):
            batched = scenario.observe_batch(level, thetas)
            stacked = np.stack([scenario.observe(level, theta) for theta in thetas])
            np.testing.assert_array_equal(batched, stacked)

    def test_physical_mask_matches_check_physical(self, scenario):
        thetas = np.array([[0.0, 0.0], [-185.0, 0.0], [1e6, 0.0], [40.0, -30.0]])
        mask = scenario.physical_mask(thetas)
        for theta, expected in zip(thetas, mask):
            source = SourceParameters.from_theta(theta)
            if expected:
                scenario.check_physical(0, source)
            else:
                with pytest.raises(UnphysicalModelOutput):
                    scenario.check_physical(0, source)

    def test_simulate_batch_rejects_unphysical_rows(self, scenario):
        with pytest.raises(UnphysicalModelOutput):
            scenario.simulate_batch(0, np.array([[0.0, 0.0], [-185.0, 0.0]]))


class TestDGBasisCache:
    def test_basis_matrices_are_shared_between_solvers(self):
        a = ADERDGSolver1D(num_cells=10, order=2)
        b = ADERDGSolver1D(num_cells=40, order=2)
        assert a.nodes is b.nodes
        assert a.diff_matrix is b.diff_matrix
        assert a._predictor_basis is b._predictor_basis
        assert not a.nodes.flags.writeable
        # different orders get different cached matrices
        c = ADERDGSolver1D(num_cells=10, order=1)
        assert c.nodes is not a.nodes
        assert c.nodes.shape == (2,)
