"""Integration tests for the parallel MLMCMC machine (roles + scheduler + estimator)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.models.gaussian import GaussianHierarchyFactory
from repro.parallel import (
    ConstantCostModel,
    LogNormalCostModel,
    ParallelMLMCMCSampler,
    strong_scaling_study,
    weak_scaling_study,
)


@pytest.fixture(scope="module")
def factory():
    return GaussianHierarchyFactory(dim=2, num_levels=3, subsampling=3, proposal_scale=2.5)


@pytest.fixture(scope="module")
def cost_model():
    return ConstantCostModel([0.01, 0.04, 0.16])


@pytest.fixture(scope="module")
def small_run(factory, cost_model):
    sampler = ParallelMLMCMCSampler(
        factory,
        num_samples=[400, 150, 60],
        num_ranks=12,
        cost_model=cost_model,
        seed=42,
    )
    return sampler.run()


class TestParallelMLMCMCRun:
    def test_terminates_and_collects_targets(self, small_run):
        assert small_run.virtual_time > 0
        assert {level: len(c) for level, c in small_run.corrections.items()} == {
            0: 400,
            1: 150,
            2: 60,
        }

    def test_estimate_structure(self, small_run, factory):
        assert small_run.mean.shape == (2,)
        assert small_run.estimate.num_levels == 3
        # statistically the estimate should be in the right ballpark of the
        # exact finest mean (loose bound: few samples, coarse tuning)
        assert np.all(np.abs(small_run.mean - factory.exact_mean()) < 1.0)

    def test_trace_and_summary(self, small_run):
        summary = small_run.summary()
        assert summary["num_ranks"] == 12
        assert summary["messages_sent"] > 0
        assert 0.0 < summary["worker_utilization"] <= 1.0
        assert len(small_run.trace) > 0
        busy = small_run.trace.per_level_busy_time()
        assert all(busy.get(level, 0) > 0 for level in range(3))

    def test_level_finish_times_ordered_sensibly(self, small_run):
        assert set(small_run.level_finish_times) == {0, 1, 2}
        assert small_run.level_finish_times[2] == pytest.approx(
            max(small_run.level_finish_times.values())
        )

    def test_samples_per_level_cover_targets(self, small_run):
        # controllers generate at least as many samples as were collected
        for level, target in zip(range(3), (400, 150, 60)):
            assert small_run.samples_per_level.get(level, 0) >= target * 0.5

    def test_reproducibility(self, factory, cost_model):
        kwargs = dict(
            num_samples=[100, 40, 15], num_ranks=10, cost_model=cost_model, seed=7
        )
        a = ParallelMLMCMCSampler(factory, **kwargs).run()
        b = ParallelMLMCMCSampler(factory, **kwargs).run()
        np.testing.assert_allclose(a.mean, b.mean)
        assert a.virtual_time == pytest.approx(b.virtual_time)
        assert a.messages_sent == b.messages_sent

    def test_workers_per_group(self, factory):
        sampler = ParallelMLMCMCSampler(
            factory,
            num_samples=[60, 30, 10],
            num_ranks=24,
            cost_model=ConstantCostModel([0.01, 0.04, 0.16]),
            workers_per_group=[0, 1, 2],
            seed=1,
        )
        result = sampler.run()
        assert result.layout.worker_ranks  # workers exist
        # workers appear in the trace (lock-step evaluation)
        worker_busy = sum(result.trace.busy_time(r) for r in result.layout.worker_ranks)
        assert worker_busy > 0

    def test_static_vs_dynamic_load_balancing(self, factory):
        cost = ConstantCostModel([0.01, 0.05, 0.2])
        common = dict(num_samples=[300, 100, 40], num_ranks=14, cost_model=cost, seed=5)
        dynamic = ParallelMLMCMCSampler(factory, dynamic_load_balancing=True, **common).run()
        static = ParallelMLMCMCSampler(factory, dynamic_load_balancing=False, **common).run()
        assert len(static.rebalance_log) == 0
        # dynamic balancing should not be (much) slower than static
        assert dynamic.virtual_time <= static.virtual_time * 1.5

    def test_validation_errors(self, factory, cost_model):
        with pytest.raises(ValueError):
            ParallelMLMCMCSampler(factory, num_samples=[10, 10], num_ranks=10, cost_model=cost_model)
        with pytest.raises(ValueError):
            ParallelMLMCMCSampler(
                factory, num_samples=[10, 10, 10], num_ranks=4, cost_model=cost_model
            )


class TestParallelSequentialConsistency:
    def test_parallel_matches_sequential_statistics(self, factory):
        """Parallel and sequential MLMCMC must estimate the same quantity.

        Both are Monte Carlo estimates, so agreement is statistical: we compare
        them against each other and the exact value within a few standard
        errors of the (known) per-level variances.
        """
        from repro.core import MLMCMCSampler

        num_samples = [3000, 800, 300]
        sequential = MLMCMCSampler(factory, num_samples=num_samples, seed=21).run()
        parallel = ParallelMLMCMCSampler(
            factory,
            num_samples=num_samples,
            num_ranks=16,
            cost_model=ConstantCostModel([0.01, 0.04, 0.16]),
            seed=22,
        ).run()
        exact = factory.exact_mean()
        assert np.all(np.abs(sequential.mean - exact) < 0.35)
        assert np.all(np.abs(parallel.mean - exact) < 0.35)
        assert np.all(np.abs(parallel.mean - sequential.mean) < 0.5)


class TestScalingStudies:
    def test_strong_scaling_improves_then_saturates(self, factory):
        cost = LogNormalCostModel([0.01, 0.05, 0.2], coefficient_of_variation=0.2)
        study = strong_scaling_study(
            factory,
            num_samples=[800, 250, 80],
            rank_counts=[10, 20, 40],
            cost_model=cost,
            seed=3,
        )
        times = study.times()
        assert len(times) == 3
        # more ranks should not be slower than the smallest run (allowing noise)
        assert times[-1] < times[0]
        assert study.speedups()[0] == pytest.approx(1.0)
        assert study.speedups()[-1] > 1.5
        table = study.table()
        assert len(table) == 3 and "efficiency" in table[0]

    def test_weak_scaling_efficiency_definition(self, factory):
        cost = ConstantCostModel([0.01, 0.05, 0.2])
        study = weak_scaling_study(
            factory,
            base_num_samples=[400, 120, 40],
            base_num_ranks=16,
            rank_counts=[8, 16, 32],
            cost_model=cost,
            seed=4,
        )
        # sample targets scale with rank count
        assert study.points[0].num_samples[0] == 200
        assert study.points[2].num_samples[0] == 800
        # efficiency is relative to the fastest run and lies in (0, 1]
        assert max(study.efficiencies()) == pytest.approx(1.0)
        assert all(0.0 < e <= 1.0 for e in study.efficiencies())
