"""Tests for the multi-index machinery."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multiindex import (
    MultiIndex,
    MultiIndexSet,
    full_tensor_set,
    multilevel_set,
    total_degree_set,
)


class TestMultiIndex:
    def test_construction_from_int_and_iterable(self):
        assert MultiIndex(2).values == (2,)
        assert MultiIndex([1, 2, 3]).values == (1, 2, 3)
        assert MultiIndex(MultiIndex([4])).values == (4,)

    def test_negative_entries_rejected(self):
        with pytest.raises(ValueError):
            MultiIndex([-1, 0])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiIndex([])

    def test_equality_and_hash(self):
        assert MultiIndex([1, 2]) == MultiIndex([1, 2])
        assert MultiIndex(3) == 3
        assert MultiIndex([1, 2]) == (1, 2)
        assert hash(MultiIndex([1, 2])) == hash(MultiIndex([1, 2]))
        assert len({MultiIndex(1), MultiIndex(1), MultiIndex(2)}) == 2

    def test_partial_order(self):
        assert MultiIndex([1, 1]) <= MultiIndex([2, 1])
        assert not (MultiIndex([2, 0]) <= MultiIndex([1, 1]))
        assert MultiIndex([1, 1]) < MultiIndex([1, 2])
        assert MultiIndex([2, 2]) > MultiIndex([1, 2])

    def test_arithmetic(self):
        assert (MultiIndex([1, 2]) + MultiIndex([0, 1])).values == (1, 3)
        assert (MultiIndex([2, 2]) - 1).values == (1, 1)
        with pytest.raises(ValueError):
            MultiIndex([1, 0]) - MultiIndex([2, 0])
        with pytest.raises(ValueError):
            MultiIndex([1]) + MultiIndex([1, 2])

    def test_order_and_max_entry(self):
        ix = MultiIndex([2, 3, 1])
        assert ix.order == 6
        assert ix.max_entry == 3

    def test_backward_neighbours(self):
        assert MultiIndex([0, 0]).backward_neighbours() == []
        neighbours = MultiIndex([2, 1]).backward_neighbours()
        assert MultiIndex([1, 1]) in neighbours and MultiIndex([2, 0]) in neighbours

    def test_forward_neighbour(self):
        assert MultiIndex([1, 1]).forward_neighbour(1).values == (1, 2)

    def test_as_level(self):
        assert MultiIndex(3).as_level() == 3
        with pytest.raises(ValueError):
            MultiIndex([1, 2]).as_level()

    def test_root(self):
        assert MultiIndex.root(3).values == (0, 0, 0)
        assert MultiIndex.root().is_root()

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_property_order_is_sum(self, values):
        assert MultiIndex(values).order == sum(values)

    @given(st.lists(st.integers(0, 5), min_size=1, max_size=4))
    @settings(max_examples=50, deadline=None)
    def test_property_backward_neighbours_are_smaller(self, values):
        ix = MultiIndex(values)
        for nb in ix.backward_neighbours():
            assert nb < ix
            assert nb.order == ix.order - 1


class TestMultiIndexSet:
    def test_multilevel_set(self):
        levels = multilevel_set(4)
        assert len(levels) == 4
        assert levels.levels() == [0, 1, 2, 3]
        assert levels.finest.as_level() == 3
        assert levels.coarsest.is_root()

    def test_downward_closedness_enforced(self):
        with pytest.raises(ValueError):
            MultiIndexSet([MultiIndex(0), MultiIndex(2)])  # missing level 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            MultiIndexSet([])

    def test_mixed_dimension_rejected(self):
        with pytest.raises(ValueError):
            MultiIndexSet([MultiIndex(0), MultiIndex([0, 0])])

    def test_full_tensor_set(self):
        tensor = full_tensor_set([2, 1])
        assert len(tensor) == 6
        assert MultiIndex([2, 1]) in tensor
        assert tensor.finest == MultiIndex([2, 1])

    def test_total_degree_set(self):
        td = total_degree_set(2, 2)
        assert len(td) == 6  # (0,0),(1,0),(0,1),(2,0),(1,1),(0,2)
        assert all(ix.order <= 2 for ix in td)

    def test_coarse_to_fine_respects_dependencies(self):
        td = total_degree_set(2, 3)
        seen = set()
        for ix in td.coarse_to_fine():
            for nb in ix.backward_neighbours():
                assert nb in seen
            seen.add(ix)

    def test_correction_pairs(self):
        levels = multilevel_set(3)
        pairs = levels.correction_pairs()
        assert pairs[0] == (MultiIndex(0), None)
        assert pairs[1] == (MultiIndex(1), MultiIndex(0))
        assert pairs[2] == (MultiIndex(2), MultiIndex(1))

    def test_levels_requires_1d(self):
        with pytest.raises(ValueError):
            full_tensor_set([1, 1]).levels()

    def test_contains_handles_garbage(self):
        levels = multilevel_set(2)
        assert 1 in levels
        assert (5,) not in levels
        assert "garbage" not in levels

    def test_multilevel_set_requires_positive(self):
        with pytest.raises(ValueError):
            multilevel_set(0)
