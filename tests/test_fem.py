"""Tests for the Q1 FEM substrate (grid, element, assembly, Poisson solver)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fem.assembly import (
    apply_dirichlet,
    assemble_diffusion_system,
    assemble_mass_matrix,
)
from repro.fem.grid import StructuredGrid
from repro.fem.poisson import PoissonSolver
from repro.fem.q1 import Q1Element


class TestStructuredGrid:
    def test_basic_counts(self):
        grid = StructuredGrid(4, 3)
        assert grid.num_elements == 12
        assert grid.num_nodes == 20
        assert grid.hx == pytest.approx(0.25)
        assert grid.hy == pytest.approx(1.0 / 3.0)

    def test_node_coordinates_cover_domain(self):
        grid = StructuredGrid(5)
        coords = grid.node_coordinates()
        assert coords.shape == (36, 2)
        assert coords.min() == 0.0 and coords.max() == 1.0

    def test_connectivity_is_counter_clockwise(self):
        grid = StructuredGrid(2)
        conn = grid.element_connectivity()
        coords = grid.node_coordinates()
        for element in conn:
            quad = coords[element]
            # shoelace formula: positive area for counter-clockwise ordering
            x, y = quad[:, 0], quad[:, 1]
            area = 0.5 * np.sum(x * np.roll(y, -1) - np.roll(x, -1) * y)
            assert area > 0

    def test_boundary_nodes(self):
        grid = StructuredGrid(3)
        coords = grid.node_coordinates()
        assert np.allclose(coords[grid.boundary_nodes("left")][:, 0], 0.0)
        assert np.allclose(coords[grid.boundary_nodes("right")][:, 0], 1.0)
        assert np.allclose(coords[grid.boundary_nodes("bottom")][:, 1], 0.0)
        assert np.allclose(coords[grid.boundary_nodes("top")][:, 1], 1.0)
        with pytest.raises(ValueError):
            grid.boundary_nodes("diagonal")

    def test_locate_point(self):
        grid = StructuredGrid(4)
        element, xi, eta = grid.locate(np.array([0.3, 0.6]))
        centers = grid.element_centers()
        assert np.linalg.norm(centers[element] - [0.3125, 0.625]) < 0.2
        assert 0.0 <= xi <= 1.0 and 0.0 <= eta <= 1.0

    def test_locate_clamps_outside_points(self):
        grid = StructuredGrid(4)
        element, xi, eta = grid.locate(np.array([1.5, -0.2]))
        assert 0 <= element < grid.num_elements

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            StructuredGrid(0)
        with pytest.raises(ValueError):
            StructuredGrid(2, bounds=((0.0, 0.0), (0.0, 1.0)))

    @given(st.integers(1, 12), st.integers(1, 12))
    @settings(max_examples=25, deadline=None)
    def test_property_counts(self, nx, ny):
        grid = StructuredGrid(nx, ny)
        assert grid.num_elements == nx * ny
        assert grid.num_nodes == (nx + 1) * (ny + 1)
        assert grid.element_connectivity().shape == (nx * ny, 4)


class TestQ1Element:
    def test_partition_of_unity(self):
        for xi, eta in [(0.2, 0.7), (0.0, 0.0), (1.0, 1.0), (0.5, 0.5)]:
            assert Q1Element.shape_functions(xi, eta).sum() == pytest.approx(1.0)

    def test_kronecker_property_at_nodes(self):
        for i, (xi, eta) in enumerate(Q1Element.NODES):
            phi = Q1Element.shape_functions(xi, eta)
            expected = np.zeros(4)
            expected[i] = 1.0
            np.testing.assert_allclose(phi, expected, atol=1e-14)

    def test_gradient_sums_to_zero(self):
        grads = Q1Element.shape_gradients(0.3, 0.8)
        np.testing.assert_allclose(grads.sum(axis=0), 0.0, atol=1e-14)

    def test_quadrature_integrates_bilinear_exactly(self):
        points, weights = Q1Element.quadrature(order=2)
        integral = sum(w * (xi * eta) for (xi, eta), w in zip(points, weights))
        assert integral == pytest.approx(0.25, rel=1e-12)
        assert weights.sum() == pytest.approx(1.0)

    def test_local_stiffness_properties(self):
        ke = Q1Element.local_stiffness(0.1, 0.1, coefficient=2.0)
        np.testing.assert_allclose(ke, ke.T, atol=1e-14)
        np.testing.assert_allclose(ke.sum(axis=1), 0.0, atol=1e-13)  # constants in kernel
        eigvals = np.linalg.eigvalsh(ke)
        assert eigvals.min() > -1e-12

    def test_local_mass_sums_to_area(self):
        me = Q1Element.local_mass(0.2, 0.5)
        assert me.sum() == pytest.approx(0.1, rel=1e-12)

    def test_interpolation(self):
        nodal = np.array([0.0, 1.0, 2.0, 1.0])  # u = x + y on the unit reference square
        assert Q1Element.interpolate(nodal, 0.5, 0.5) == pytest.approx(1.0)
        assert Q1Element.interpolate(nodal, 1.0, 0.0) == pytest.approx(1.0)


class TestAssembly:
    def test_global_stiffness_symmetric_and_singular_without_bc(self):
        grid = StructuredGrid(4)
        stiffness, load = assemble_diffusion_system(grid, np.ones(grid.num_elements))
        dense = stiffness.toarray()
        np.testing.assert_allclose(dense, dense.T, atol=1e-12)
        # constant vector is in the kernel before boundary conditions
        np.testing.assert_allclose(dense @ np.ones(grid.num_nodes), 0.0, atol=1e-12)
        np.testing.assert_allclose(load, 0.0)

    def test_wrong_coefficient_count(self):
        grid = StructuredGrid(3)
        with pytest.raises(ValueError):
            assemble_diffusion_system(grid, np.ones(5))

    def test_negative_coefficient_rejected(self):
        grid = StructuredGrid(3)
        with pytest.raises(ValueError):
            assemble_diffusion_system(grid, -np.ones(grid.num_elements))

    def test_source_term_enters_load(self):
        grid = StructuredGrid(4)
        _, load = assemble_diffusion_system(grid, np.ones(grid.num_elements), source=1.0)
        assert load.sum() == pytest.approx(1.0, rel=1e-12)  # integral of f over domain

    def test_mass_matrix_integrates_domain(self):
        grid = StructuredGrid(5)
        mass = assemble_mass_matrix(grid)
        assert mass.sum() == pytest.approx(1.0, rel=1e-12)

    def test_dirichlet_preserves_symmetry_and_pins_values(self):
        grid = StructuredGrid(4)
        stiffness, load = assemble_diffusion_system(grid, np.ones(grid.num_elements))
        nodes = grid.boundary_nodes("left")
        fixed, rhs = apply_dirichlet(stiffness, load, nodes, 3.0)
        dense = fixed.toarray()
        np.testing.assert_allclose(dense, dense.T, atol=1e-12)
        solution = np.linalg.solve(dense, rhs)
        np.testing.assert_allclose(solution[nodes], 3.0, atol=1e-10)


class TestPoissonSolver:
    def test_constant_coefficient_gives_linear_solution(self):
        grid = StructuredGrid(8)
        solver = PoissonSolver(grid)
        solution = solver.solve(np.ones(grid.num_elements))
        coords = grid.node_coordinates()
        np.testing.assert_allclose(solution, coords[:, 0], atol=1e-10)

    def test_point_evaluation_of_linear_solution(self):
        grid = StructuredGrid(8)
        solver = PoissonSolver(grid)
        solution = solver.solve(np.ones(grid.num_elements))
        points = np.array([[0.1, 0.3], [0.77, 0.5], [0.5, 0.99]])
        np.testing.assert_allclose(solver.evaluate(solution, points), points[:, 0], atol=1e-10)

    def test_layered_coefficient_harmonic_mean_flux(self):
        # Two vertical layers kappa=1 (left half), kappa=2 (right half):
        # the exact effective permeability is the harmonic mean 4/3.
        grid = StructuredGrid(16)
        solver = PoissonSolver(grid)
        centers = grid.element_centers()
        kappa = np.where(centers[:, 0] < 0.5, 1.0, 2.0)
        keff = solver.effective_permeability(kappa)
        assert keff == pytest.approx(4.0 / 3.0, rel=1e-2)

    def test_maximum_principle(self, rng):
        # With zero source, the solution must stay within the boundary values [0, 1].
        grid = StructuredGrid(12)
        solver = PoissonSolver(grid)
        kappa = np.exp(rng.normal(0, 1, size=grid.num_elements))
        solution = solver.solve(kappa)
        assert solution.min() >= -1e-9
        assert solution.max() <= 1.0 + 1e-9

    def test_mesh_convergence_for_smooth_coefficient(self):
        # kappa(x, y) = 1 + x: exact solution u(x) = log(1 + x) / log(2).
        errors = []
        for n in (4, 8, 16, 32):
            grid = StructuredGrid(n)
            solver = PoissonSolver(grid)
            centers = grid.element_centers()
            kappa = 1.0 + centers[:, 0]
            solution = solver.solve(kappa)
            coords = grid.node_coordinates()
            exact = np.log1p(coords[:, 0]) / np.log(2.0)
            errors.append(np.abs(solution - exact).max())
        errors = np.array(errors)
        rates = np.log2(errors[:-1] / errors[1:])
        # Q1 elements: second-order convergence (allow some slack on coarse meshes)
        assert rates[-1] > 1.6

    def test_observation_count_and_solver_bookkeeping(self):
        grid = StructuredGrid(8)
        solver = PoissonSolver(grid)
        obs = solver.solve_and_observe(np.ones(grid.num_elements), np.array([[0.5, 0.5]]))
        assert obs.shape == (1,)
        assert solver.num_solves == 1
        assert solver.num_dofs == grid.num_nodes
