"""Shared fixtures for the test-suite.

Fixtures construct deliberately small instances of the expensive substrates
(KL expansions, FEM solvers, tsunami scenarios) with module scope so they are
built once per test module.
"""

from __future__ import annotations

import socket

import numpy as np
import pytest

from repro.models.gaussian import GaussianHierarchyFactory
from repro.models.poisson import PoissonInverseProblemFactory
from repro.models.tsunami import TsunamiInverseProblemFactory, TsunamiLevelSpec


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic generator per test."""
    return np.random.default_rng(12345)


def free_localhost_port() -> int:
    """A currently-free 127.0.0.1 TCP port (kernel-allocated, then released).

    Socket-transport tests that must know a port *before* binding a listener
    use this instead of hard-coding one, so parallel CI shards cannot collide.
    There is a small release-to-rebind race; anything that can bind first
    should prefer ``port=0`` (the SocketWorld default) instead.
    """
    with socket.socket(socket.AF_INET, socket.SOCK_STREAM) as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


@pytest.fixture
def free_port() -> int:
    """One free localhost port per test (see :func:`free_localhost_port`)."""
    return free_localhost_port()


@pytest.fixture(scope="session")
def gaussian_factory() -> GaussianHierarchyFactory:
    """A small analytic Gaussian hierarchy with known moments."""
    return GaussianHierarchyFactory(dim=2, num_levels=3, subsampling=5, proposal_scale=2.5)


@pytest.fixture(scope="session")
def small_poisson_factory() -> PoissonInverseProblemFactory:
    """A scaled-down Poisson inverse problem (fast enough for unit tests)."""
    return PoissonInverseProblemFactory(
        mesh_sizes=(8, 16),
        num_kl_modes=16,
        quadrature_points_per_dim=10,
        qoi_resolution=8,
        subsampling_rates=[0, 4],
        pcn_beta=0.4,
    )


@pytest.fixture(scope="session")
def small_tsunami_factory() -> TsunamiInverseProblemFactory:
    """A scaled-down tsunami inverse problem (coarse grids, short simulation)."""
    return TsunamiInverseProblemFactory(
        level_specs=(
            TsunamiLevelSpec(0, 12, "constant", False, 0.15, 2.5),
            TsunamiLevelSpec(1, 24, "smoothed", True, 0.10, 1.5, smoothing_passes=2),
        ),
        end_time=900.0,
        subsampling_rates=[0, 2],
    )
