"""Tests for layout, cost models and the load-balancing policy."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.costmodel import (
    ConstantCostModel,
    LogNormalCostModel,
    MeasuredCostModel,
    POISSON_PAPER_COSTS,
    TSUNAMI_PAPER_COSTS,
)
from repro.parallel.layout import ProcessLayout
from repro.parallel.loadbalancer import (
    DynamicLoadBalancer,
    LevelLoad,
    StaticLoadBalancer,
)


class TestProcessLayout:
    def test_basic_roles(self):
        layout = ProcessLayout.create(num_ranks=16, num_levels=3)
        assert layout.root_rank == 0
        assert layout.phonebook_rank == 1
        assert len(layout.collector_ranks) == 3
        assert layout.num_work_groups >= 3
        all_ranks = (
            [layout.root_rank, layout.phonebook_rank]
            + [r for ranks in layout.collector_ranks.values() for r in ranks]
            + layout.controller_ranks
            + layout.worker_ranks
        )
        assert len(all_ranks) == len(set(all_ranks))
        assert max(all_ranks) < 16

    def test_every_level_gets_a_group(self):
        layout = ProcessLayout.create(num_ranks=10, num_levels=3)
        for level in range(3):
            assert len(layout.groups_for_level(level)) >= 1

    def test_weights_skew_group_allocation(self):
        heavy_coarse = ProcessLayout.create(
            num_ranks=40, num_levels=2, level_weights=[10.0, 1.0]
        )
        heavy_fine = ProcessLayout.create(
            num_ranks=40, num_levels=2, level_weights=[1.0, 10.0]
        )
        assert len(heavy_coarse.groups_for_level(0)) > len(heavy_fine.groups_for_level(0))

    def test_workers_per_group(self):
        layout = ProcessLayout.create(num_ranks=30, num_levels=2, workers_per_group=[0, 3])
        for group in layout.work_groups:
            expected = 0 if group.initial_level == 0 else 3
            assert len(group.worker_ranks) == expected
            assert group.size == expected + 1

    def test_insufficient_ranks_rejected(self):
        with pytest.raises(ValueError):
            ProcessLayout.create(num_ranks=6, num_levels=3, workers_per_group=2)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ProcessLayout.create(num_ranks=10, num_levels=0)
        with pytest.raises(ValueError):
            ProcessLayout.create(num_ranks=10, num_levels=2, workers_per_group=[1])
        with pytest.raises(ValueError):
            ProcessLayout.create(num_ranks=10, num_levels=2, level_weights=[1.0, -1.0])

    def test_describe(self):
        layout = ProcessLayout.create(num_ranks=20, num_levels=3)
        info = layout.describe()
        assert info["num_ranks"] == 20
        assert sum(info["groups_per_level"].values()) == layout.num_work_groups

    @given(num_ranks=st.integers(8, 200), num_levels=st.integers(1, 4))
    @settings(max_examples=30, deadline=None)
    def test_property_rank_budget_respected(self, num_ranks, num_levels):
        min_needed = 2 + num_levels + num_levels  # root, phonebook, collectors, 1 group/level
        if num_ranks < min_needed:
            return
        layout = ProcessLayout.create(num_ranks=num_ranks, num_levels=num_levels)
        used = (
            2
            + sum(len(r) for r in layout.collector_ranks.values())
            + sum(g.size for g in layout.work_groups)
        )
        assert used <= num_ranks
        assert all(len(layout.groups_for_level(level)) >= 1 for level in range(num_levels))


class TestCostModels:
    def test_constant(self):
        model = ConstantCostModel([1.0, 10.0], group_sizes=[1, 4])
        rng = np.random.default_rng(0)
        assert model.mean(0) == 1.0
        assert model.sample(1, rng) == 10.0
        assert model.group_size(1) == 4
        # out-of-range level clamps to the last entry
        assert model.mean(5) == 10.0

    def test_constant_validation(self):
        with pytest.raises(ValueError):
            ConstantCostModel([0.0, 1.0])

    def test_lognormal_mean_and_variability(self):
        model = LogNormalCostModel([2.0], coefficient_of_variation=0.5)
        rng = np.random.default_rng(1)
        draws = np.array([model.sample(0, rng) for _ in range(20000)])
        assert draws.mean() == pytest.approx(2.0, rel=0.05)
        assert draws.std() / draws.mean() == pytest.approx(0.5, rel=0.1)
        assert np.all(draws > 0)

    def test_lognormal_zero_cv_is_deterministic(self):
        model = LogNormalCostModel([3.0], coefficient_of_variation=0.0)
        rng = np.random.default_rng(2)
        assert model.sample(0, rng) == 3.0

    def test_measured_blends_observations(self):
        prior = ConstantCostModel([1.0, 1.0])
        model = MeasuredCostModel(prior, smoothing=0.5)
        rng = np.random.default_rng(0)
        assert model.mean(0) == 1.0
        model.observe(0, 3.0)
        assert model.mean(0) == 3.0
        model.observe(0, 1.0)
        assert model.mean(0) == pytest.approx(2.0)
        assert model.num_observations(0) == 2
        assert model.mean(1) == 1.0  # unobserved level falls back to the prior
        assert model.sample(0, rng) == model.mean(0)

    def test_paper_cost_constants(self):
        assert len(POISSON_PAPER_COSTS) == 3 and len(TSUNAMI_PAPER_COSTS) == 3
        assert POISSON_PAPER_COSTS[2] > POISSON_PAPER_COSTS[0]
        assert TSUNAMI_PAPER_COSTS == (7.38, 97.3, 438.1)


def _loads(chain0=0, chain1=0, avail0=0, avail1=0, groups=(2, 2), done=(False, False)):
    return {
        0: LevelLoad(0, queued_chain_requests=chain0, available_samples=avail0,
                     num_groups=groups[0], done=done[0], needed_as_proposal_source=not done[1]),
        1: LevelLoad(1, queued_chain_requests=chain1, available_samples=avail1,
                     num_groups=groups[1], done=done[1], needed_as_proposal_source=False),
    }


class TestLoadBalancer:
    def _balancer(self, **kwargs):
        return DynamicLoadBalancer(cost_model=ConstantCostModel([1.0, 2.0]), **kwargs)

    def test_no_decision_without_pressure(self):
        balancer = self._balancer()
        assert balancer.decide(_loads(), now=100.0) is None

    def test_moves_group_towards_starving_level(self):
        balancer = self._balancer(pressure_threshold=1.0)
        decision = balancer.decide(_loads(chain0=5, avail1=10), now=10.0)
        assert decision is not None
        assert decision.target_level == 0
        assert decision.source_level == 1

    def test_never_empties_a_needed_level(self):
        balancer = self._balancer(pressure_threshold=1.0)
        loads = _loads(chain0=5, groups=(1, 1))
        # level 1 is not done and has only one group: it may not donate
        decision = balancer.decide(loads, now=10.0)
        assert decision is None

    def test_done_and_unneeded_level_can_be_emptied(self):
        balancer = self._balancer(pressure_threshold=1.0)
        loads = _loads(chain1=5, groups=(1, 1), done=(True, False))
        # level 0 is done; is it needed as a proposal source? In _loads the
        # needed flag of level 0 is "not done(1)" = True, so it is protected.
        assert balancer.decide(loads, now=10.0) is None
        loads = _loads(chain1=5, groups=(1, 1), done=(True, True))
        loads[1].done = False  # level 1 still collecting but level 0 not needed
        loads[0].needed_as_proposal_source = False
        decision = balancer.decide(loads, now=10.0)
        assert decision is not None and decision.source_level == 0

    def test_rate_limiting_between_decisions(self):
        balancer = self._balancer(pressure_threshold=1.0, rate_limit_factor=5.0)
        first = balancer.decide(_loads(chain0=5, avail1=10), now=10.0)
        assert first is not None
        immediately_after = balancer.decide(_loads(chain0=5, avail1=10), now=10.5)
        assert immediately_after is None
        later = balancer.decide(_loads(chain0=5, avail1=10), now=30.0)
        assert later is not None

    def test_min_interval_rate_limit(self):
        balancer = self._balancer(pressure_threshold=1.0, min_interval=100.0)
        assert balancer.decide(_loads(chain0=5, avail1=10), now=10.0) is not None
        assert balancer.decide(_loads(chain0=5, avail1=10), now=50.0) is None
        assert balancer.decide(_loads(chain0=5, avail1=10), now=200.0) is not None

    def test_rate_limit_uses_levels_involved_in_move(self):
        # Regression: the interval was derived from the slowest level of the
        # WHOLE hierarchy, so in a steep cost hierarchy a move between two
        # cheap coarse levels was suppressed for 5 x the finest level's run
        # time even though neither level was involved.
        balancer = DynamicLoadBalancer(
            cost_model=ConstantCostModel([0.01, 0.02, 1000.0]),
            pressure_threshold=1.0,
            rate_limit_factor=5.0,
        )

        def coarse_loads():
            return {
                0: LevelLoad(0, queued_chain_requests=5, num_groups=1),
                1: LevelLoad(1, available_samples=10, num_groups=2,
                             done=True, needed_as_proposal_source=False),
                2: LevelLoad(2, num_groups=1),
            }

        first = balancer.decide(coarse_loads(), now=10.0)
        assert first is not None
        assert {first.source_level, first.target_level} == {0, 1}
        # 0.5 s later: far beyond 5 * max(cost(0), cost(1)) = 0.1 s, yet far
        # below 5 * cost(2) = 5000 s.  The move must go through.
        second = balancer.decide(coarse_loads(), now=10.5)
        assert second is not None, "coarse-level move over-throttled by fine-level cost"

        # A move involving the expensive level is still rate-limited by it.
        expensive_loads = {
            0: LevelLoad(0, available_samples=10, num_groups=2,
                         done=True, needed_as_proposal_source=False),
            2: LevelLoad(2, queued_chain_requests=5, num_groups=1),
        }
        assert balancer.decide(expensive_loads, now=11.0) is None
        assert balancer.decide(expensive_loads, now=11.0 + 6000.0) is not None

    def test_pressure_threshold_prevents_marginal_moves(self):
        balancer = self._balancer(pressure_threshold=100.0)
        assert balancer.decide(_loads(chain0=2, avail1=1), now=10.0) is None

    def test_chain_requests_weigh_more_than_collector_requests(self):
        load = LevelLoad(0, queued_chain_requests=1, queued_collector_requests=1)
        pressure = load.pressure(chain_weight=4.0, collector_weight=1.0)
        assert pressure == pytest.approx(5.0)

    def test_static_balancer_never_moves(self):
        balancer = StaticLoadBalancer()
        assert balancer.decide(_loads(chain0=100, avail1=50), now=10.0) is None

    def test_empty_loads(self):
        assert self._balancer().decide({}, now=0.0) is None

    def test_pressure_ignores_remaining_work_by_default(self):
        # static runs report no remaining-work share and legacy callers pass
        # no third weight: the pressure must be exactly the old two-term value
        load = LevelLoad(0, queued_chain_requests=1, queued_collector_requests=1,
                         estimated_remaining_work=0.9)
        assert load.pressure(chain_weight=4.0, collector_weight=1.0) == pytest.approx(5.0)

    def test_remaining_work_share_adds_demand(self):
        load = LevelLoad(0, queued_chain_requests=1, queued_collector_requests=1,
                         estimated_remaining_work=0.9)
        pressure = load.pressure(4.0, 1.0, remaining_work_weight=2.0)
        assert pressure == pytest.approx(5.0 + 2.0 * 0.9)

    def test_remaining_work_steers_target_selection(self):
        # Two equally starving levels; the live allocation reports that level
        # 1 holds most of the run's remaining work, so it wins the group.
        balancer = self._balancer(pressure_threshold=1.0)

        def loads(remaining1=0.0):
            return {
                0: LevelLoad(0, queued_chain_requests=3, num_groups=1),
                1: LevelLoad(1, queued_chain_requests=3, num_groups=1,
                             estimated_remaining_work=remaining1),
                2: LevelLoad(2, available_samples=4, num_groups=2,
                             done=True, needed_as_proposal_source=False),
            }

        baseline = balancer.decide(loads(), now=10.0)
        assert baseline is not None and baseline.target_level == 0
        steered = self._balancer(pressure_threshold=1.0).decide(
            loads(remaining1=0.9), now=10.0
        )
        assert steered is not None
        assert steered.target_level == 1
        assert steered.source_level == 2

    def test_remaining_work_share_unlocks_marginal_move(self):
        balancer = self._balancer(pressure_threshold=21.0)

        def loads(remaining0=0.0):
            return {
                0: LevelLoad(0, queued_chain_requests=2, num_groups=1,
                             estimated_remaining_work=remaining0),
                1: LevelLoad(1, available_samples=10, num_groups=2,
                             done=True, needed_as_proposal_source=False),
            }

        # queue pressure alone (8 vs -12) stays under the threshold ...
        assert balancer.decide(loads(), now=10.0) is None
        # ... but the remaining-work share of an adaptive run tips it over
        decision = balancer.decide(loads(remaining0=1.0), now=10.0)
        assert decision is not None
        assert decision.target_level == 0 and decision.source_level == 1
