"""Cross-backend conformance suite for the parallel MLMCMC transports.

One parametrized suite pinning all three backends — ``simulated`` (DES),
``multiprocess`` (OS queues) and ``socket`` (TCP hub on localhost) — to the
same driver-facing semantics:

* the two real-process backends produce **bitwise-identical** estimates for a
  seeded run (they drive the same deterministic role generators; only the
  delivery fabric differs),
* per-level collection counts are identical on *every* backend (the collector
  truncates at its target regardless of scheduling),
* every backend's estimate is statistically consistent with the analytically
  known posterior mean,
* trace/utilization fields are populated when tracing is on and NaN (per the
  documented contract) when it is off,
* shutdown is clean: no leaked child processes, no open hub sockets.

The simulated backend legitimately differs from the real-process backends in
the estimate *values*: virtual-time scheduling feeds coarse proposals to fine
chains in a different interleaving.  What must never differ is the estimator
contract above — that drift is exactly what this suite exists to catch.
"""

from __future__ import annotations

import math
import multiprocessing
from dataclasses import replace

import numpy as np
import pytest

from repro.core.allocation import ContinuationAllocation, SamplingBudget
from repro.experiments import get_scenario, run_scenario, validate_manifest
from repro.models.gaussian import GaussianHierarchyFactory
from repro.parallel import ConstantCostModel, ParallelMLMCMCSampler

BACKENDS = ("simulated", "multiprocess", "socket")
REAL_BACKENDS = ("multiprocess", "socket")
NUM_SAMPLES = [40, 16, 8]


@pytest.fixture(scope="module")
def factory():
    return GaussianHierarchyFactory(dim=2, num_levels=3, subsampling=3)


def _sampler(factory, backend, **overrides):
    options = dict(
        num_samples=NUM_SAMPLES,
        num_ranks=8,
        cost_model=ConstantCostModel([0.01, 0.04, 0.16]),
        seed=11,
        backend=backend,
    )
    options.update(overrides)
    return ParallelMLMCMCSampler(factory, **options)


@pytest.fixture(scope="module")
def results(factory):
    """One seeded run per backend, shared by the conformance assertions."""
    return {
        backend: _sampler(factory, backend).run() for backend in BACKENDS
    }


# ----------------------------------------------------------------------------
class TestEstimatorConformance:
    def test_real_process_backends_bitwise_identical(self, results):
        np.testing.assert_array_equal(
            results["multiprocess"].mean, results["socket"].mean
        )
        for level in range(len(NUM_SAMPLES)):
            np.testing.assert_array_equal(
                results["multiprocess"].corrections[level].fine_matrix(),
                results["socket"].corrections[level].fine_matrix(),
            )

    def test_socket_backend_is_run_to_run_deterministic(self, factory, results):
        again = _sampler(factory, "socket").run()
        np.testing.assert_array_equal(results["socket"].mean, again.mean)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_per_level_collection_counts_identical(self, results, backend):
        # Each collector truncates at its target, so the collected counts are
        # exact and backend-independent even though scheduling (and therefore
        # the raw number of *generated* samples) differs.
        counts = {
            level: len(collection)
            for level, collection in results[backend].corrections.items()
        }
        assert counts == {level: target for level, target in enumerate(NUM_SAMPLES)}

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_estimate_statistically_consistent(self, factory, results, backend):
        result = results[backend]
        assert np.all(np.isfinite(result.mean))
        assert np.linalg.norm(result.mean - factory.exact_mean()) < 1.5

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_backend_recorded_on_result(self, results, backend):
        assert results[backend].backend == backend


# ----------------------------------------------------------------------------
class TestTraceContract:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_trace_populated_and_utilization_finite(self, results, backend):
        result = results[backend]
        assert result.trace.events(), f"{backend} recorded no trace events"
        utilization = result.worker_utilization()
        assert math.isfinite(utilization)
        assert 0.0 < utilization <= 1.0

    @pytest.mark.parametrize("backend", REAL_BACKENDS)
    def test_utilization_is_nan_when_tracing_disabled(self, factory, backend):
        result = _sampler(factory, backend, trace_enabled=False).run()
        assert math.isnan(result.worker_utilization())
        # the estimator itself must not depend on tracing
        assert np.all(np.isfinite(result.mean))

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_summary_has_identical_layout(self, results, backend):
        assert set(results[backend].summary()) == set(results["simulated"].summary())
        assert results[backend].summary()["messages_sent"] > 0


# ----------------------------------------------------------------------------
class TestCleanShutdown:
    @pytest.mark.parametrize("backend", REAL_BACKENDS)
    def test_no_leaked_processes(self, factory, backend):
        _sampler(factory, backend).run()
        leaked = [c for c in multiprocessing.active_children() if c.is_alive()]
        assert leaked == [], f"{backend} leaked children: {leaked}"

    def test_socket_hub_closed_after_run(self, factory):
        sampler = _sampler(factory, "socket")
        world, _root, _phonebook = sampler.build_world()
        world.run()
        assert world._hub is not None
        assert world._hub.closed, "hub listener/connections left open"


# ----------------------------------------------------------------------------
class TestScenarioConformance:
    """The CI acceptance check: seeded quick poisson-parallel, socket ≡ mp."""

    @pytest.fixture(scope="class")
    def scenario_runs(self):
        return {
            backend: run_scenario(
                "poisson-parallel", quick=True, parallel_backend=backend
            )
            for backend in BACKENDS
        }

    def test_quick_poisson_socket_bitwise_equals_multiprocess(self, scenario_runs):
        mp_mean = scenario_runs["multiprocess"].payload["mean"]
        socket_mean = scenario_runs["socket"].payload["mean"]
        assert mp_mean == socket_mean, "socket and multiprocess estimates diverged"

    def test_per_level_counts_identical_across_all_backends(self, scenario_runs):
        counts = {
            backend: {
                level: len(collection)
                for level, collection in run.raw.corrections.items()
            }
            for backend, run in scenario_runs.items()
        }
        assert counts["simulated"] == counts["multiprocess"] == counts["socket"]
        assert all(c > 0 for c in counts["socket"].values())

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_manifest_records_backend_and_validates(self, scenario_runs, backend):
        manifest = scenario_runs[backend].manifest
        validate_manifest(manifest)
        assert manifest["parallel_backend"] == backend
        assert manifest["results"]["parallel_backend"] == backend


# ----------------------------------------------------------------------------
class TestAllocationConformance:
    """The allocation layer's cross-backend contract.

    An explicit ``policy: "fixed"`` budget must reproduce the no-budget run
    bitwise (the policy resolves to ``allocation=None``, the pre-allocation
    static machine); adaptive runs price their snapshots from the declared
    cost model, so their continuation trajectories are deterministic per
    backend and bitwise-identical between the two real-process transports.
    """

    def test_explicit_fixed_budget_bitwise_identical(self):
        base = get_scenario("poisson-parallel").resolved(quick=True)
        plain = run_scenario(base, parallel_backend="simulated")
        fixed = run_scenario(
            replace(base, budget={"policy": "fixed"}),
            parallel_backend="simulated",
        )
        assert plain.payload["mean"] == fixed.payload["mean"]
        assert fixed.manifest["allocation"] == {"policy": "fixed"}
        assert plain.raw.allocation_rounds == []
        assert fixed.raw.allocation_rounds == []

    def _adaptive_run(self, factory, backend):
        policy = ContinuationAllocation(
            SamplingBudget(cost_cap=3.0, max_rounds=4), pilot=[8, 4, 2]
        )
        return _sampler(factory, backend, allocation=policy).run()

    def test_adaptive_simulated_deterministic_trajectory(self, factory):
        first = self._adaptive_run(factory, "simulated")
        second = self._adaptive_run(factory, "simulated")
        trajectory = [r.targets for r in first.allocation_rounds]
        assert len(trajectory) >= 2
        assert trajectory == [r.targets for r in second.allocation_rounds]
        np.testing.assert_array_equal(first.mean, second.mean)
        # the merged collections realize the final round's targets
        final = first.allocation_rounds[-1]
        assert [
            len(first.corrections[level]) for level in sorted(first.corrections)
        ] == final.collected
        # the cap-respecting policy never spends past its budget
        assert final.spent_cost <= 3.0 + 1e-9

    def test_adaptive_real_backends_bitwise_identical(self, factory):
        mp_run = self._adaptive_run(factory, "multiprocess")
        socket_run = self._adaptive_run(factory, "socket")
        assert len(mp_run.allocation_rounds) >= 2
        assert [r.targets for r in mp_run.allocation_rounds] == [
            r.targets for r in socket_run.allocation_rounds
        ]
        np.testing.assert_array_equal(mp_run.mean, socket_run.mean)
