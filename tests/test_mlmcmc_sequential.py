"""Integration tests for the sequential MLMCMC driver on the analytic Gaussian hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    GaussianTargetProblem,
    MLComponentFactory,
    MLMCMCSampler,
    run_single_level_mcmc,
)
from repro.core.proposals import GaussianRandomWalkProposal, IndependenceProposal
from repro.bayes.distributions import GaussianDensity
from repro.models.gaussian import GaussianHierarchyFactory


class IndependenceGaussianFactory(MLComponentFactory):
    """Gaussian hierarchy whose level-0 proposal is an exact independence sampler.

    With exact coarse-level proposals the coarse chain mixes perfectly, which
    removes the proposal-autocorrelation bias and makes tight statistical
    assertions possible.
    """

    def __init__(self, dim=1, num_levels=3, decay=0.5):
        self.inner = GaussianHierarchyFactory(
            dim=dim, num_levels=num_levels, decay=decay, subsampling=1
        )
        self.dim = dim

    def num_levels(self):
        return self.inner.num_levels()

    def problem_for_level(self, level):
        return self.inner.problem_for_level(level)

    def proposal_for_level(self, level, problem):
        return IndependenceProposal(
            GaussianDensity(self.inner.level_mean(0), self.inner.level_covariance(0))
        )

    def starting_point_for_level(self, level):
        return self.inner.starting_point_for_level(level)

    def subsampling_rate_for_level(self, level):
        return 1


class TestSequentialMLMCMC:
    def test_estimates_finest_posterior_mean(self):
        factory = IndependenceGaussianFactory(dim=1, num_levels=3)
        sampler = MLMCMCSampler(factory, num_samples=[6000, 2500, 1200], seed=11)
        result = sampler.run()
        exact = factory.inner.exact_mean()
        assert result.mean == pytest.approx(exact, abs=0.12)
        # per-level corrections match their closed forms
        for level, contribution in enumerate(result.estimate.contributions):
            expected = factory.inner.exact_correction(level)
            np.testing.assert_allclose(contribution.mean, expected, atol=0.15)

    def test_correction_variance_decays_with_level(self):
        factory = IndependenceGaussianFactory(dim=1, num_levels=3, decay=0.3)
        sampler = MLMCMCSampler(factory, num_samples=[4000, 1500, 800], seed=5)
        result = sampler.run()
        variances = [float(c.variance[0]) for c in result.estimate.contributions]
        # V[Q_0] is the posterior variance (~1); corrections are much smaller
        assert variances[1] < variances[0]
        assert variances[2] < variances[0]

    def test_bookkeeping_fields(self, gaussian_factory):
        sampler = MLMCMCSampler(gaussian_factory, num_samples=[300, 100, 50], seed=0)
        result = sampler.run()
        assert len(result.chains) == 3
        assert len(result.acceptance_rates) == 3
        assert all(0.0 <= rate <= 1.0 for rate in result.acceptance_rates)
        assert all(evals > 0 for evals in result.model_evaluations)
        assert result.wall_time > 0.0
        assert [len(c) for c in result.corrections] == [300, 100, 50]

    def test_num_samples_validation(self, gaussian_factory):
        with pytest.raises(ValueError):
            MLMCMCSampler(gaussian_factory, num_samples=[100, 100])
        with pytest.raises(ValueError):
            MLMCMCSampler(gaussian_factory, num_samples=[100, 100, 100], burnin=[1])

    def test_seed_reproducibility(self, gaussian_factory):
        a = MLMCMCSampler(gaussian_factory, num_samples=[200, 80, 30], seed=123).run()
        b = MLMCMCSampler(gaussian_factory, num_samples=[200, 80, 30], seed=123).run()
        np.testing.assert_allclose(a.mean, b.mean)
        c = MLMCMCSampler(gaussian_factory, num_samples=[200, 80, 30], seed=124).run()
        assert not np.allclose(a.mean, c.mean)

    def test_subsampling_override(self, gaussian_factory):
        sampler = MLMCMCSampler(
            gaussian_factory, num_samples=[200, 60, 20], subsampling_rates=[0, 2, 2], seed=1
        )
        result = sampler.run()
        assert result.mean.shape == (2,)

    def test_single_level_baseline(self):
        factory = IndependenceGaussianFactory(dim=1, num_levels=2)
        estimate, chain = run_single_level_mcmc(factory, level=1, num_samples=4000, seed=3)
        exact = factory.inner.level_mean(1)
        assert estimate.mean == pytest.approx(exact, abs=0.1)
        assert estimate.num_samples == 4000
        assert chain.level == 1

    def test_two_level_hierarchy(self):
        factory = IndependenceGaussianFactory(dim=2, num_levels=2)
        result = MLMCMCSampler(factory, num_samples=[2000, 800], seed=9).run()
        exact = factory.inner.exact_mean()
        np.testing.assert_allclose(result.mean, exact, atol=0.15)


class TestMLMCMCvsSingleLevelEfficiency:
    def test_multilevel_is_cheaper_for_same_accuracy(self):
        """The headline complexity claim, in miniature.

        For a fixed (modest) accuracy target, MLMCMC spends most samples on the
        cheap level while single-level MCMC pays the fine-level cost for every
        sample; the multilevel nominal cost must be substantially smaller.
        """
        factory = IndependenceGaussianFactory(dim=1, num_levels=3)
        costs = [problem.evaluation_cost() for problem in (
            factory.problem_for_level(0), factory.problem_for_level(1), factory.problem_for_level(2)
        )]
        ml_samples = [4000, 800, 200]
        ml_nominal_cost = sum(n * c for n, c in zip(ml_samples, costs))
        # single-level on the finest model with the same number of fine samples
        # as the coarse level would need for comparable MC error
        sl_nominal_cost = 4000 * costs[2]
        assert ml_nominal_cost < 0.5 * sl_nominal_cost
