"""Tests for the persistent-structure FEM fast path.

Covers the parity guarantees the fast path promises against the original
reference implementations: plan-based assembly vs. the COO path, the reduced
interior system vs. full ``apply_dirichlet`` elimination, the sparse
observation operator vs. the ``evaluate()`` loop, ``solve_batch`` vs. looped
``solve``, and the boundary-clamp edge cases of point location.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.fem.assembly import (
    AssemblyPlan,
    apply_dirichlet,
    assemble_diffusion_system,
)
from repro.fem.grid import StructuredGrid
from repro.fem.poisson import PoissonSolver


def _random_kappa(grid: StructuredGrid, rng: np.random.Generator) -> np.ndarray:
    return np.exp(rng.normal(0.0, 1.0, size=grid.num_elements))


class TestGridCaching:
    def test_connectivity_is_cached_and_read_only(self):
        grid = StructuredGrid(6, 4)
        conn = grid.element_connectivity()
        assert grid.element_connectivity() is conn
        assert not conn.flags.writeable
        with pytest.raises(ValueError):
            conn[0, 0] = 99

    def test_boundary_nodes_are_cached_and_read_only(self):
        grid = StructuredGrid(5)
        for side in ("left", "right", "bottom", "top"):
            nodes = grid.boundary_nodes(side)
            assert grid.boundary_nodes(side) is nodes
            assert not nodes.flags.writeable

    def test_vectorized_connectivity_matches_node_index(self):
        grid = StructuredGrid(4, 3)
        conn = grid.element_connectivity()
        e = 0
        for j in range(grid.ny):
            for i in range(grid.nx):
                expected = (
                    grid.node_index(i, j),
                    grid.node_index(i + 1, j),
                    grid.node_index(i + 1, j + 1),
                    grid.node_index(i, j + 1),
                )
                assert tuple(conn[e]) == expected
                e += 1


class TestLocateBatch:
    def test_matches_scalar_locate(self, rng):
        grid = StructuredGrid(7, 5, bounds=((-1.0, 2.0), (0.5, 3.0)))
        points = np.column_stack(
            [rng.uniform(-2.0, 3.0, size=50), rng.uniform(0.0, 4.0, size=50)]
        )
        elements, xi, eta = grid.locate_batch(points)
        for k, point in enumerate(points):
            element, sxi, seta = grid.locate(point)
            assert elements[k] == element
            assert xi[k] == sxi
            assert eta[k] == seta

    @pytest.mark.parametrize(
        "point",
        [(0.0, 0.0), (1.0, 1.0), (1.0, 0.0), (0.0, 1.0), (-0.5, 0.3), (1.7, 2.0), (0.5, -3.0)],
    )
    def test_boundary_and_outside_points_clamp_into_grid(self, point):
        grid = StructuredGrid(4)
        element, xi, eta = grid.locate(np.asarray(point, dtype=float))
        assert 0 <= element < grid.num_elements
        assert 0.0 <= xi < 1.0
        assert 0.0 <= eta < 1.0
        elements, xis, etas = grid.locate_batch(np.asarray(point, dtype=float)[None, :])
        assert elements[0] == element
        assert xis[0] == xi and etas[0] == eta

    def test_corner_point_lands_in_last_element(self):
        grid = StructuredGrid(8)
        element, xi, eta = grid.locate(np.array([1.0, 1.0]))
        assert element == grid.num_elements - 1
        assert xi == pytest.approx(1.0, abs=1e-8)
        assert eta == pytest.approx(1.0, abs=1e-8)


class TestAssemblyPlanParity:
    @pytest.mark.parametrize("shape", [(4, 4), (6, 3), (1, 5)])
    def test_plan_matrix_matches_coo_path(self, shape, rng):
        grid = StructuredGrid(*shape)
        kappa = _random_kappa(grid, rng)
        reference, ref_load = assemble_diffusion_system(grid, kappa, source=1.5)
        plan = AssemblyPlan(grid, source=1.5)
        fast, fast_load = plan.assemble(kappa)
        assert fast.shape == reference.shape
        np.testing.assert_allclose(fast.toarray(), reference.toarray(), rtol=1e-13, atol=1e-15)
        np.testing.assert_allclose(fast_load, ref_load, rtol=1e-13)

    def test_plan_validates_coefficients(self):
        grid = StructuredGrid(3)
        plan = AssemblyPlan(grid)
        with pytest.raises(ValueError):
            plan.assemble(np.ones(5))
        with pytest.raises(ValueError):
            plan.assemble(-np.ones(grid.num_elements))

    def test_duplicate_dirichlet_nodes_rejected(self):
        grid = StructuredGrid(3)
        with pytest.raises(ValueError):
            AssemblyPlan(grid, dirichlet_nodes=np.array([0, 0, 1]))

    def test_returned_matrices_do_not_alias_plan_structure(self, rng):
        # Structural mutation of a returned matrix (a routine caller-side
        # cleanup) must not corrupt the plan's persistent sparsity.
        grid = StructuredGrid(4)
        plan = AssemblyPlan(grid)
        kappa = _random_kappa(grid, rng)
        reference = plan.assemble(kappa)[0].toarray()
        mutated, _ = plan.assemble(kappa)
        mutated.data[::2] = 0.0
        mutated.eliminate_zeros()
        np.testing.assert_array_equal(plan.assemble(kappa)[0].toarray(), reference)

    def test_reduced_system_matches_full_elimination(self, rng):
        grid = StructuredGrid(9)
        nodes = np.concatenate([grid.boundary_nodes("left"), grid.boundary_nodes("right")])
        values = rng.uniform(-1.0, 1.0, size=nodes.size)
        kappa = _random_kappa(grid, rng)
        plan = AssemblyPlan(grid, dirichlet_nodes=nodes)

        k_ii, rhs_i = plan.reduced_system(kappa, values)
        reduced = np.linalg.solve(k_ii.toarray(), rhs_i)
        full_solution = plan.expand(reduced, values)

        stiffness, load = assemble_diffusion_system(grid, kappa)
        eliminated, rhs = apply_dirichlet(stiffness, load, nodes, values)
        reference = np.linalg.solve(eliminated.toarray(), rhs)
        np.testing.assert_allclose(full_solution, reference, atol=1e-11)


class TestFastPathSolver:
    def test_solve_matches_reference_to_machine_precision(self, rng):
        grid = StructuredGrid(16)
        solver = PoissonSolver(grid)
        kappa = _random_kappa(grid, rng)
        fast = solver.solve(kappa)
        reference = solver.solve_reference(kappa)
        np.testing.assert_allclose(fast, reference, atol=1e-11)
        assert solver.num_solves == 2

    def test_cg_strategy_matches_direct(self, rng):
        grid = StructuredGrid(12)
        kappa = _random_kappa(grid, rng)
        direct = PoissonSolver(grid, solver="splu").solve(kappa)
        iterative = PoissonSolver(grid, solver="cg").solve(kappa)
        np.testing.assert_allclose(iterative, direct, atol=1e-9)

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            PoissonSolver(StructuredGrid(4), solver="magic")

    def test_solve_batch_matches_looped_solve(self, rng):
        grid = StructuredGrid(10)
        solver = PoissonSolver(grid)
        block = np.exp(rng.normal(0.0, 0.8, size=(5, grid.num_elements)))
        batch = solver.solve_batch(block)
        loop = np.stack([solver.solve(kappa) for kappa in block])
        assert batch.shape == (5, grid.num_nodes)
        np.testing.assert_array_equal(batch, loop)
        assert solver.num_solves == 10

    def test_observation_operator_matches_evaluate_loop(self, rng):
        grid = StructuredGrid(12)
        solver = PoissonSolver(grid)
        solution = solver.solve(_random_kappa(grid, rng))
        points = np.vstack(
            [
                rng.uniform(0.0, 1.0, size=(20, 2)),
                [[0.0, 0.0], [1.0, 1.0], [1.0, 0.5], [0.25, 1.0]],
            ]
        )
        operator = solver.observation_operator(points)
        assert operator.shape == (points.shape[0], grid.num_nodes)
        # rows are convex interpolation weights
        np.testing.assert_allclose(
            np.asarray(operator.sum(axis=1)).ravel(), 1.0, atol=1e-12
        )
        np.testing.assert_allclose(
            operator @ solution, solver.evaluate(solution, points), atol=1e-13
        )

    def test_solve_and_observe_uses_cached_operator(self, rng):
        grid = StructuredGrid(8)
        solver = PoissonSolver(grid)
        points = np.array([[0.3, 0.4], [0.9, 0.1]])
        kappa = _random_kappa(grid, rng)
        first = solver.solve_and_observe(kappa, points)
        assert len(solver._observation_operators) == 1
        second = solver.solve_and_observe(kappa, points)
        assert len(solver._observation_operators) == 1
        np.testing.assert_array_equal(first, second)

    def test_solve_and_observe_batch_matches_scalar(self, rng):
        grid = StructuredGrid(8)
        solver = PoissonSolver(grid)
        block = np.exp(rng.normal(0.0, 0.5, size=(4, grid.num_elements)))
        points = np.array([[0.2, 0.2], [0.5, 0.77], [1.0, 1.0]])
        batch = solver.solve_and_observe_batch(block, points)
        loop = np.stack([solver.solve_and_observe(kappa, points) for kappa in block])
        assert batch.shape == (4, 3)
        np.testing.assert_allclose(batch, loop, rtol=1e-13, atol=1e-15)

    def test_solver_picklable_after_cg_solve(self, rng):
        # PoolEvaluator pickles bound problems; the cached SuperLU-backed
        # preconditioner must be dropped (and lazily rebuilt), not pickled.
        import pickle

        grid = StructuredGrid(8)
        solver = PoissonSolver(grid, solver="cg")
        kappa = _random_kappa(grid, rng)
        expected = solver.solve(kappa)
        assert solver._cg_preconditioner is not None
        clone = pickle.loads(pickle.dumps(solver))
        assert clone._cg_preconditioner is None
        np.testing.assert_allclose(clone.solve(kappa), expected, atol=1e-10)

    def test_single_column_grid_pins_all_nodes(self):
        # nx = 1 makes every node a Dirichlet node: the reduced system is
        # empty and the solution is just the boundary data u = x.
        grid = StructuredGrid(1, 4)
        solver = PoissonSolver(grid)
        solution = solver.solve(np.ones(grid.num_elements))
        np.testing.assert_allclose(solution, grid.node_coordinates()[:, 0], atol=1e-14)


class TestForwardModelBatchParity:
    def test_forward_batch_matches_scalar_calls(self, small_poisson_factory, rng):
        forward = small_poisson_factory.forward_model(0)
        thetas = 0.4 * rng.standard_normal((6, forward.parameter_dim))
        batch = forward.forward_batch(thetas)
        loop = np.stack([forward(theta) for theta in thetas])
        np.testing.assert_allclose(batch, loop, rtol=1e-13, atol=1e-15)
