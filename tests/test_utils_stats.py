"""Tests for repro.utils.stats: running moments and MCMC diagnostics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.utils.stats import (
    RunningMoments,
    WeightedRunningMoments,
    autocorrelation,
    batch_means_variance,
    effective_sample_size,
    integrated_autocorrelation_time,
)


class TestRunningMoments:
    def test_matches_numpy_mean_and_variance(self, rng):
        data = rng.normal(size=(200, 3))
        moments = RunningMoments()
        moments.extend(data)
        assert moments.count == 200
        np.testing.assert_allclose(moments.mean(), data.mean(axis=0), rtol=1e-12)
        np.testing.assert_allclose(moments.variance(), data.var(axis=0, ddof=1), rtol=1e-12)
        np.testing.assert_allclose(moments.std(), data.std(axis=0, ddof=1), rtol=1e-12)

    def test_covariance_matches_numpy(self, rng):
        data = rng.normal(size=(150, 4))
        moments = RunningMoments(track_covariance=True)
        moments.extend(data)
        np.testing.assert_allclose(moments.covariance(), np.cov(data.T), rtol=1e-10)

    def test_scalar_samples_are_promoted(self):
        moments = RunningMoments()
        for x in [1.0, 2.0, 3.0]:
            moments.push(x)
        np.testing.assert_allclose(moments.mean(), [2.0])

    def test_empty_moments(self):
        moments = RunningMoments()
        assert moments.count == 0
        assert moments.mean().size == 0
        assert moments.standard_error().size == 0

    def test_dimension_mismatch_raises(self):
        moments = RunningMoments()
        moments.push(np.zeros(2))
        with pytest.raises(ValueError):
            moments.push(np.zeros(3))

    def test_merge_equivalent_to_single_pass(self, rng):
        data = rng.normal(size=(300, 2))
        full = RunningMoments(track_covariance=True)
        full.extend(data)
        part_a = RunningMoments(track_covariance=True)
        part_b = RunningMoments(track_covariance=True)
        part_a.extend(data[:100])
        part_b.extend(data[100:])
        part_a.merge(part_b)
        assert part_a.count == 300
        np.testing.assert_allclose(part_a.mean(), full.mean(), rtol=1e-10)
        np.testing.assert_allclose(part_a.variance(), full.variance(), rtol=1e-10)
        np.testing.assert_allclose(part_a.covariance(), full.covariance(), rtol=1e-9)

    def test_merge_into_empty(self, rng):
        data = rng.normal(size=(50, 2))
        filled = RunningMoments()
        filled.extend(data)
        empty = RunningMoments()
        empty.merge(filled)
        np.testing.assert_allclose(empty.mean(), data.mean(axis=0))

    def test_merge_empty_is_noop(self, rng):
        data = rng.normal(size=(50, 2))
        filled = RunningMoments()
        filled.extend(data)
        filled.merge(RunningMoments())
        assert filled.count == 50

    @given(
        data=hnp.arrays(
            dtype=float,
            shape=st.tuples(st.integers(2, 40), st.integers(1, 4)),
            elements=st.floats(-1e3, 1e3, allow_nan=False),
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_property_matches_two_pass(self, data):
        moments = RunningMoments()
        moments.extend(data)
        np.testing.assert_allclose(moments.mean(), data.mean(axis=0), atol=1e-8)
        np.testing.assert_allclose(
            moments.variance(), data.var(axis=0, ddof=1), rtol=1e-6, atol=1e-6
        )

    @given(
        n_split=st.integers(1, 29),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_merge_invariant_to_split_point(self, n_split, seed):
        data = np.random.default_rng(seed).normal(size=(30, 2))
        a = RunningMoments()
        b = RunningMoments()
        a.extend(data[:n_split])
        b.extend(data[n_split:])
        a.merge(b)
        np.testing.assert_allclose(a.mean(), data.mean(axis=0), atol=1e-10)
        np.testing.assert_allclose(a.variance(), data.var(axis=0, ddof=1), atol=1e-10)


class TestWeightedRunningMoments:
    def test_unit_weights_match_unweighted(self, rng):
        data = rng.normal(size=(100, 2))
        weighted = WeightedRunningMoments()
        for row in data:
            weighted.push(row, 1.0)
        np.testing.assert_allclose(weighted.mean(), data.mean(axis=0), rtol=1e-12)
        np.testing.assert_allclose(weighted.variance(), data.var(axis=0, ddof=1), rtol=1e-10)

    def test_integer_weights_match_repetition(self, rng):
        values = rng.normal(size=(20, 2))
        weights = rng.integers(1, 5, size=20)
        weighted = WeightedRunningMoments()
        for value, weight in zip(values, weights):
            weighted.push(value, float(weight))
        expanded = np.repeat(values, weights, axis=0)
        np.testing.assert_allclose(weighted.mean(), expanded.mean(axis=0), rtol=1e-10)

    def test_zero_weight_is_ignored(self):
        weighted = WeightedRunningMoments()
        weighted.push(np.array([1.0]), 1.0)
        weighted.push(np.array([100.0]), 0.0)
        np.testing.assert_allclose(weighted.mean(), [1.0])

    def test_negative_weight_raises(self):
        weighted = WeightedRunningMoments()
        with pytest.raises(ValueError):
            weighted.push(np.array([1.0]), -1.0)


class TestAutocorrelation:
    def test_iid_series_has_unit_iact(self, rng):
        series = rng.standard_normal(20_000)
        tau = integrated_autocorrelation_time(series)
        assert tau == pytest.approx(1.0, abs=0.2)

    def test_ar1_series_iact_matches_theory(self, rng):
        # AR(1) with coefficient phi has IACT = (1 + phi) / (1 - phi).
        phi = 0.8
        n = 60_000
        noise = rng.standard_normal(n)
        series = np.zeros(n)
        for i in range(1, n):
            series[i] = phi * series[i - 1] + noise[i]
        tau = integrated_autocorrelation_time(series)
        expected = (1 + phi) / (1 - phi)
        assert tau == pytest.approx(expected, rel=0.25)

    def test_autocorrelation_starts_at_one(self, rng):
        rho = autocorrelation(rng.standard_normal(500))
        assert rho[0] == pytest.approx(1.0)
        assert np.all(np.abs(rho) <= 1.0 + 1e-9)

    def test_constant_series(self):
        assert integrated_autocorrelation_time(np.ones(100)) == 1.0

    def test_short_series(self):
        assert integrated_autocorrelation_time(np.array([1.0, 2.0])) == 1.0

    def test_effective_sample_size_bounds(self, rng):
        series = rng.standard_normal(5000)
        ess = effective_sample_size(series)
        assert 0 < ess <= 5000 * 1.2
        # correlated series has smaller ESS
        correlated = np.repeat(rng.standard_normal(500), 10)
        assert effective_sample_size(correlated) < ess

    def test_effective_sample_size_multivariate_takes_minimum(self, rng):
        iid = rng.standard_normal(4000)
        correlated = np.repeat(rng.standard_normal(400), 10)
        combined = np.stack([iid, correlated], axis=1)
        assert effective_sample_size(combined) <= effective_sample_size(iid)

    def test_batch_means_variance_positive(self, rng):
        series = rng.standard_normal(1000)
        var = batch_means_variance(series)
        assert var > 0
        # Roughly 1/N for iid standard normals.
        assert var == pytest.approx(1.0 / 1000, rel=1.0)

    def test_batch_means_variance_short_series(self):
        assert batch_means_variance(np.array([1.0])) == 0.0
