"""Tests for repro.utils options, random-source and timing helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils.options import Options
from repro.utils.random import (
    RandomSource,
    as_generator,
    choice_without_replacement,
    spawn_rngs,
    stratified_indices,
)
from repro.utils.timing import Timer, TimingRegistry


class TestOptions:
    def test_attribute_and_item_access(self):
        opts = Options({"chain": {"num_samples": 100}}, burnin=10)
        assert opts.chain.num_samples == 100
        assert opts["burnin"] == 10

    def test_nested_dicts_become_options(self):
        opts = Options({"a": {"b": {"c": 1}}})
        assert isinstance(opts.a, Options)
        assert opts.a.b.c == 1

    def test_to_dict_round_trip(self):
        source = {"a": 1, "b": {"c": [1, 2, 3]}}
        assert Options(source).to_dict() == source

    def test_merged_does_not_mutate_original(self):
        base = Options({"a": 1, "nested": {"x": 1}})
        merged = base.merged({"nested": {"y": 2}}, a=5)
        assert base.a == 1 and "y" not in base.nested
        assert merged.a == 5 and merged.nested.x == 1 and merged.nested.y == 2

    def test_setdefaults_only_fills_missing(self):
        opts = Options({"a": 1})
        opts.setdefaults({"a": 99, "b": 2})
        assert opts.a == 1 and opts.b == 2

    def test_require_raises_listing_missing(self):
        opts = Options({"a": 1})
        with pytest.raises(KeyError, match="b"):
            opts.require("a", "b")

    def test_coerce_accepts_none_dict_and_options(self):
        assert Options.coerce(None, x=1).x == 1
        assert Options.coerce({"x": 2}).x == 2
        assert Options.coerce(Options({"x": 3}), y=4).y == 4

    def test_deletion_and_len(self):
        opts = Options({"a": 1, "b": 2})
        del opts["a"]
        assert len(opts) == 1 and "a" not in opts


class TestRandomSource:
    def test_child_streams_are_reproducible(self):
        a = RandomSource(7).child("chain", 0).standard_normal(5)
        b = RandomSource(7).child("chain", 0).standard_normal(5)
        np.testing.assert_array_equal(a, b)

    def test_child_streams_are_distinct(self):
        source = RandomSource(7)
        a = source.child("chain", 0).standard_normal(5)
        b = source.child("chain", 1).standard_normal(5)
        assert not np.allclose(a, b)

    def test_same_name_returns_same_generator(self):
        source = RandomSource(0)
        assert source.child("x") is source.child("x")

    def test_spawn_rngs_independent(self):
        rngs = spawn_rngs(3, 4)
        assert len(rngs) == 4
        draws = [r.standard_normal(3) for r in rngs]
        for i in range(4):
            for j in range(i + 1, 4):
                assert not np.allclose(draws[i], draws[j])

    def test_as_generator(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen
        assert isinstance(as_generator(5), np.random.Generator)

    def test_stratified_indices_sorted_and_in_range(self, rng):
        idx = stratified_indices(rng, 100, 10)
        assert np.all(np.diff(idx) > 0)
        assert idx.min() >= 0 and idx.max() < 100

    def test_stratified_indices_invalid_strata(self, rng):
        with pytest.raises(ValueError):
            stratified_indices(rng, 10, 0)

    def test_choice_without_replacement(self, rng):
        picked = choice_without_replacement(rng, range(10), 4)
        assert len(picked) == 4 and len(set(picked)) == 4
        assert choice_without_replacement(rng, range(3), 10) == [0, 1, 2]


class TestTiming:
    def test_timer_accumulates(self):
        timer = Timer()
        with timer.measure():
            pass
        with timer.measure():
            pass
        assert timer.count == 2
        assert timer.elapsed >= 0.0
        assert timer.mean >= 0.0

    def test_timer_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_registry_report(self):
        registry = TimingRegistry()
        with registry.measure("solve"):
            pass
        report = registry.report()
        assert "solve" in report and report["solve"]["count"] == 1
        assert registry.total("missing") == 0.0
        assert registry.mean("missing") == 0.0
