"""Tests for the Poisson inverse-problem model hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MLMCMCSampler, run_single_level_mcmc
from repro.models.poisson import PoissonInverseProblemFactory


class TestPoissonFactoryStructure:
    def test_level_summary(self, small_poisson_factory):
        rows = small_poisson_factory.level_summary()
        assert len(rows) == 2
        assert rows[0]["mesh_width"] == pytest.approx(1 / 8)
        assert rows[1]["dofs"] == 17**2
        assert rows[1]["subsampling_rate"] == 4

    def test_paper_scale_defaults(self):
        # Do not build the factory (the level-2 mode matrix is large); just
        # check the declared defaults match the paper.
        import inspect

        signature = inspect.signature(PoissonInverseProblemFactory.__init__)
        assert signature.parameters["mesh_sizes"].default == (16, 64, 256)
        assert signature.parameters["num_kl_modes"].default == 113
        assert signature.parameters["correlation_length"].default == 0.15
        assert signature.parameters["noise_std"].default == 0.01
        assert signature.parameters["prior_variance"].default == 4.0

    def test_observation_grid_size(self, small_poisson_factory):
        # 6 coordinates per direction -> 36 observation points
        assert small_poisson_factory.data.shape == (36,)
        assert small_poisson_factory.observation_points.shape == (36, 2)

    def test_data_is_generated_from_finest_level(self, small_poisson_factory):
        finest = small_poisson_factory.num_levels() - 1
        forward = small_poisson_factory.forward_model(finest)
        np.testing.assert_allclose(
            forward(small_poisson_factory.true_theta), small_poisson_factory.data
        )

    def test_solution_observations_are_physical(self, small_poisson_factory):
        # the PDE solution obeys the maximum principle: observations in [0, 1]
        assert np.all(small_poisson_factory.data >= 0.0)
        assert np.all(small_poisson_factory.data <= 1.0)

    def test_qoi_map_positive_and_consistent_across_levels(self, small_poisson_factory, rng):
        theta = rng.standard_normal(small_poisson_factory.field.num_modes)
        qoi = small_poisson_factory.qoi_map(theta)
        assert np.all(qoi > 0)
        assert qoi.shape == (small_poisson_factory.qoi_points.shape[0],)
        # QOI is level-independent by construction (depends only on theta)
        problem0 = small_poisson_factory.problem_for_level(0)
        problem1 = small_poisson_factory.problem_for_level(1)
        np.testing.assert_allclose(problem0.qoi(theta), problem1.qoi(theta))

    def test_true_qoi_shape(self, small_poisson_factory):
        grid_shape = small_poisson_factory.qoi_grid_shape()
        assert small_poisson_factory.true_qoi().shape == (grid_shape[0] * grid_shape[1],)

    def test_posterior_peaks_near_truth(self, small_poisson_factory):
        problem = small_poisson_factory.problem_for_level(0)
        at_truth = problem.log_density(small_poisson_factory.true_theta)
        at_zero = problem.log_density(np.zeros(small_poisson_factory.field.num_modes))
        at_random = problem.log_density(
            np.random.default_rng(1).standard_normal(small_poisson_factory.field.num_modes) * 2
        )
        assert at_truth > at_zero
        assert at_truth > at_random

    def test_coarse_and_fine_posteriors_are_correlated(self, small_poisson_factory, rng):
        # Log densities across levels should broadly agree (coarse approximates fine).
        problem0 = small_poisson_factory.problem_for_level(0)
        problem1 = small_poisson_factory.problem_for_level(1)
        thetas = [
            small_poisson_factory.true_theta + 0.2 * rng.standard_normal(
                small_poisson_factory.field.num_modes
            )
            for _ in range(6)
        ]
        coarse = np.array([problem0.log_density(t) for t in thetas])
        fine = np.array([problem1.log_density(t) for t in thetas])
        assert np.corrcoef(coarse, fine)[0, 1] > 0.7

    def test_costs_grow_with_level(self, small_poisson_factory):
        costs = [
            small_poisson_factory.problem_for_level(level).evaluation_cost()
            for level in range(small_poisson_factory.num_levels())
        ]
        assert costs[1] > costs[0]

    def test_proposal_variants(self, small_poisson_factory):
        problem = small_poisson_factory.problem_for_level(0)
        for proposal_type in ("pcn", "independence", "random_walk", "adaptive"):
            factory = PoissonInverseProblemFactory(
                mesh_sizes=(8,),
                num_kl_modes=8,
                quadrature_points_per_dim=8,
                qoi_resolution=4,
                subsampling_rates=[0],
                proposal=proposal_type,
            )
            proposal = factory.proposal_for_level(0, problem)
            assert proposal is not None


class TestPoissonSampling:
    def test_short_mlmcmc_run_recovers_coarse_field_features(self, small_poisson_factory):
        sampler = MLMCMCSampler(
            small_poisson_factory, num_samples=[150, 40], burnin=[20, 5], seed=3
        )
        result = sampler.run()
        estimate = result.mean
        truth = small_poisson_factory.true_qoi()
        assert estimate.shape == truth.shape
        # The level-0 term is a plain posterior mean of a positive field, so it
        # must be positive; the full telescoping estimate may dip below zero
        # pointwise for very short runs, but should correlate with the truth.
        level0_mean = result.estimate.contributions[0].mean
        assert np.all(level0_mean > 0)
        correlation = np.corrcoef(estimate, truth)[0, 1]
        assert correlation > 0.2

    def test_single_level_chain_runs(self, small_poisson_factory):
        estimate, chain = run_single_level_mcmc(
            small_poisson_factory, level=0, num_samples=100, burnin=10, seed=2
        )
        assert estimate.num_samples == 100
        assert 0.0 <= chain.acceptance_rate <= 1.0
