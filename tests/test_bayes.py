"""Tests for the Bayesian layer: densities, likelihoods, posterior composition."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats

from repro.bayes.distributions import (
    GaussianDensity,
    IndependentProductDensity,
    LogNormalDensity,
    TruncatedGaussianDensity,
    UniformBoxDensity,
)
from repro.bayes.likelihood import (
    GaussianLikelihood,
    UnphysicalModelOutput,
    likelihood_from_forward_model,
)
from repro.bayes.posterior import Posterior


class TestGaussianDensity:
    def test_log_density_matches_scipy(self, rng):
        mean = np.array([1.0, -2.0])
        cov = np.array([[2.0, 0.3], [0.3, 1.0]])
        density = GaussianDensity(mean, cov)
        x = rng.normal(size=2)
        expected = stats.multivariate_normal(mean, cov).logpdf(x)
        assert density.log_density(x) == pytest.approx(expected, rel=1e-10)

    def test_scalar_covariance_broadcast(self):
        density = GaussianDensity(0.0, 4.0, dim=3)
        assert density.dim == 3
        np.testing.assert_allclose(density.covariance, 4.0 * np.eye(3))

    def test_diagonal_covariance(self):
        density = GaussianDensity(np.zeros(2), np.array([1.0, 9.0]))
        np.testing.assert_allclose(density.covariance, np.diag([1.0, 9.0]))

    def test_sampling_moments(self, rng):
        density = GaussianDensity(np.array([2.0, -1.0]), np.array([0.5, 2.0]))
        samples = density.sample_n(rng, 20_000)
        np.testing.assert_allclose(samples.mean(axis=0), [2.0, -1.0], atol=0.05)
        np.testing.assert_allclose(samples.var(axis=0), [0.5, 2.0], rtol=0.1)

    def test_invalid_covariance_raises(self):
        with pytest.raises(ValueError):
            GaussianDensity(np.zeros(2), np.array([[1.0, 2.0], [2.0, 1.0]]))
        with pytest.raises(ValueError):
            GaussianDensity(0.0, -1.0, dim=2)

    def test_dimension_mismatch(self):
        density = GaussianDensity(np.zeros(2), 1.0)
        with pytest.raises(ValueError):
            density.log_density(np.zeros(3))

    @given(st.floats(-5, 5), st.floats(0.1, 5))
    @settings(max_examples=30, deadline=None)
    def test_property_max_at_mean(self, mean, var):
        density = GaussianDensity(mean, var, dim=1)
        at_mean = density.log_density(np.array([mean]))
        assert at_mean >= density.log_density(np.array([mean + 0.5]))
        assert at_mean >= density.log_density(np.array([mean - 1.3]))


class TestUniformBoxDensity:
    def test_inside_outside(self):
        box = UniformBoxDensity([0.0, 0.0], [2.0, 4.0])
        assert np.isfinite(box.log_density(np.array([1.0, 1.0])))
        assert box.log_density(np.array([3.0, 1.0])) == -math.inf
        assert box.log_density(np.array([1.0, 1.0])) == pytest.approx(-math.log(8.0))

    def test_sampling_stays_inside(self, rng):
        box = UniformBoxDensity([-1.0, 0.0], [1.0, 5.0])
        samples = box.sample_n(rng, 500)
        assert np.all(samples[:, 0] >= -1.0) and np.all(samples[:, 0] <= 1.0)
        assert np.all(samples[:, 1] >= 0.0) and np.all(samples[:, 1] <= 5.0)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            UniformBoxDensity([0.0], [0.0])
        with pytest.raises(ValueError):
            UniformBoxDensity([0.0, 0.0], [1.0])


class TestTruncatedGaussian:
    def test_truncation(self, rng):
        gaussian = GaussianDensity(np.zeros(2), 100.0)
        truncated = TruncatedGaussianDensity(gaussian, [-1, -1], [1, 1])
        samples = truncated.sample_n(rng, 200)
        assert np.all(np.abs(samples) <= 1.0)
        assert truncated.log_density(np.array([5.0, 0.0])) == -math.inf
        assert np.isfinite(truncated.log_density(np.array([0.5, 0.5])))

    def test_impossible_truncation_raises(self, rng):
        gaussian = GaussianDensity(np.zeros(1), 1e-6)
        truncated = TruncatedGaussianDensity(gaussian, [100.0], [101.0], max_rejections=50)
        with pytest.raises(RuntimeError):
            truncated.sample(rng)


class TestLogNormalAndProduct:
    def test_lognormal_support(self):
        density = LogNormalDensity(0.0, 1.0, dim=2)
        assert density.log_density(np.array([1.0, 2.0])) > -math.inf
        assert density.log_density(np.array([-1.0, 2.0])) == -math.inf

    def test_lognormal_matches_scipy(self, rng):
        density = LogNormalDensity(0.5, 0.75, dim=1)
        x = float(rng.lognormal())
        expected = stats.lognorm(s=0.75, scale=math.exp(0.5)).logpdf(x)
        assert density.log_density(np.array([x])) == pytest.approx(expected, rel=1e-9)

    def test_product_density(self, rng):
        product = IndependentProductDensity(
            [GaussianDensity(0.0, 1.0, dim=2), UniformBoxDensity([0.0], [1.0])]
        )
        assert product.dim == 3
        sample = product.sample(rng)
        assert sample.shape == (3,)
        value = product.log_density(sample)
        assert np.isfinite(value)
        assert product.log_density(np.array([0.0, 0.0, 2.0])) == -math.inf


class TestGaussianLikelihood:
    def test_peaks_at_data(self):
        data = np.array([1.0, 2.0])
        likelihood = GaussianLikelihood(data, 0.1)
        assert likelihood.log_likelihood(data) > likelihood.log_likelihood(data + 0.3)

    def test_matches_scipy(self, rng):
        data = rng.normal(size=3)
        cov = np.diag([0.5, 1.0, 2.0])
        likelihood = GaussianLikelihood(data, np.array([0.5, 1.0, 2.0]))
        prediction = rng.normal(size=3)
        expected = stats.multivariate_normal(data, cov).logpdf(prediction)
        assert likelihood.log_likelihood(prediction) == pytest.approx(expected, rel=1e-9)

    def test_full_covariance(self, rng):
        data = np.zeros(2)
        cov = np.array([[1.0, 0.4], [0.4, 2.0]])
        likelihood = GaussianLikelihood(data, cov)
        prediction = rng.normal(size=2)
        expected = stats.multivariate_normal(data, cov).logpdf(prediction)
        assert likelihood.log_likelihood(prediction) == pytest.approx(expected, rel=1e-9)

    def test_unphysical_prediction_gets_floor(self):
        likelihood = GaussianLikelihood(np.zeros(2), 1.0)
        assert likelihood.log_likelihood(np.array([np.nan, 0.0])) == likelihood.unphysical_log_likelihood
        assert likelihood.log_likelihood(np.array([np.inf, 0.0])) == likelihood.unphysical_log_likelihood

    def test_dimension_mismatch_raises(self):
        likelihood = GaussianLikelihood(np.zeros(2), 1.0)
        with pytest.raises(ValueError):
            likelihood.log_likelihood(np.zeros(3))

    def test_misfit_is_quadratic_form(self):
        likelihood = GaussianLikelihood(np.zeros(2), 2.0)
        assert likelihood.misfit(np.array([2.0, 0.0])) == pytest.approx(2.0)

    def test_with_data(self):
        likelihood = GaussianLikelihood(np.zeros(2), 1.0)
        other = likelihood.with_data(np.ones(2))
        np.testing.assert_allclose(other.data, 1.0)

    def test_forward_model_composition_handles_unphysical(self):
        likelihood = GaussianLikelihood(np.zeros(1), 1.0)

        def forward(theta):
            if theta[0] > 0:
                raise UnphysicalModelOutput("bad")
            return np.array([theta[0]])

        loglike = likelihood_from_forward_model(likelihood, forward)
        assert loglike(np.array([-1.0])) < 0
        assert loglike(np.array([1.0])) == likelihood.unphysical_log_likelihood


class TestPosterior:
    def _make(self, n_calls: list[int]) -> Posterior:
        prior = GaussianDensity(np.zeros(2), 4.0)
        likelihood = GaussianLikelihood(np.array([0.5, 0.5]), 0.25)

        def forward(theta):
            n_calls[0] += 1
            return theta

        return Posterior(prior, likelihood, forward)

    def test_log_density_is_prior_plus_likelihood(self):
        calls = [0]
        posterior = self._make(calls)
        theta = np.array([0.1, -0.2])
        expected = posterior.log_prior(theta) + posterior.log_likelihood(theta)
        assert posterior.log_density(theta) == pytest.approx(expected)

    def test_forward_model_caching(self):
        calls = [0]
        posterior = self._make(calls)
        theta = np.array([0.3, 0.3])
        posterior.log_density(theta)
        posterior.qoi(theta)
        posterior.forward(theta)
        assert calls[0] == 1  # cached after the first evaluation
        posterior.log_density(np.array([0.4, 0.4]))
        assert calls[0] == 2

    def test_default_qoi_is_parameter(self):
        calls = [0]
        posterior = self._make(calls)
        theta = np.array([1.0, 2.0])
        np.testing.assert_allclose(posterior.qoi(theta), theta)

    def test_infinite_prior_shortcuts_likelihood(self):
        calls = [0]
        prior = UniformBoxDensity([0.0, 0.0], [1.0, 1.0])
        likelihood = GaussianLikelihood(np.zeros(2), 1.0)

        def forward(theta):
            calls[0] += 1
            return theta

        posterior = Posterior(prior, likelihood, forward)
        assert posterior.log_density(np.array([2.0, 2.0])) == -math.inf
        assert calls[0] == 0

    def test_unphysical_forward_gets_floor(self):
        prior = GaussianDensity(np.zeros(1), 1.0)
        likelihood = GaussianLikelihood(np.zeros(1), 1.0)

        def forward(theta):
            raise UnphysicalModelOutput("always bad")

        posterior = Posterior(prior, likelihood, forward)
        value = posterior.log_density(np.array([0.0]))
        assert value == pytest.approx(
            prior.log_density(np.array([0.0])) + likelihood.unphysical_log_likelihood
        )
