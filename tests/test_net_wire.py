"""Wire format and bootstrap of the socket transport (`repro.parallel.net`).

Framing must be *boringly* strict: every `Message` variant round-trips
bitwise (zero-length payloads, large ndarrays, metadata), while truncated
frames, foreign magic and mismatched protocol versions are rejected loudly —
never silently misparsed.  The rendezvous bootstrap must survive a listener
that drops the first connection (backoff + retry) and must *not* retry a
protocol-version mismatch.
"""

from __future__ import annotations

import socket
import struct
import threading

import numpy as np
import pytest

from conftest import free_localhost_port
from repro.parallel.net import (
    FRAME_HELLO,
    FRAME_MESSAGE,
    FRAME_WELCOME,
    HEADER_SIZE,
    MAGIC,
    PROTOCOL_VERSION,
    ProtocolVersionError,
    TruncatedFrameError,
    WireProtocolError,
    _HELLO,
    connect_with_backoff,
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
    read_frame,
    write_frame,
)
from repro.parallel.transport import Message


def roundtrip(message: Message, seq: int = 0) -> tuple[int, Message]:
    kind, body = decode_frame(encode_frame(FRAME_MESSAGE, encode_message(message, seq)))
    assert kind == FRAME_MESSAGE
    return decode_message(body)


# ----------------------------------------------------------------------------
class TestMessageRoundTrip:
    def test_plain_payload(self):
        original = Message(source=3, dest=7, tag="SAMPLE_REQUEST", payload={"n": 4})
        seq, decoded = roundtrip(original, seq=42)
        assert seq == 42
        assert decoded.source == 3 and decoded.dest == 7
        assert decoded.tag == "SAMPLE_REQUEST"
        assert decoded.payload == {"n": 4}

    def test_zero_length_payload_and_empty_tag(self):
        original = Message(source=0, dest=1, tag="", payload=None)
        _, decoded = roundtrip(original)
        assert decoded.tag == ""
        assert decoded.payload is None
        assert decoded.metadata == {}

    def test_large_ndarray_payload_is_bitwise_preserved(self):
        rng = np.random.default_rng(0)
        array = rng.standard_normal((512, 257))  # ~1 MB, larger than any recv chunk
        original = Message(source=1, dest=2, tag="CORRECTION_BATCH", payload=array)
        _, decoded = roundtrip(original)
        np.testing.assert_array_equal(decoded.payload, array)
        assert decoded.payload.dtype == array.dtype

    def test_timestamps_metadata_and_negative_ranks_survive(self):
        # DRIVER_RANK injections use source=-1; the envelope must carry it.
        original = Message(
            source=-1,
            dest=5,
            tag="COLLECT",
            payload=(0, 60),
            send_time=1.25,
            delivery_time=2.5,
            metadata={"resumed": True},
        )
        _, decoded = roundtrip(original)
        assert decoded.source == -1
        assert decoded.send_time == 1.25 and decoded.delivery_time == 2.5
        assert decoded.metadata == {"resumed": True}

    def test_every_role_protocol_tag_roundtrips(self):
        from repro.parallel.roles.protocol import Tags

        tags = [
            value
            for name, value in vars(Tags).items()
            if not name.startswith("_") and isinstance(value, str)
        ]
        assert tags, "tag vocabulary went missing"
        for i, tag in enumerate(tags):
            seq, decoded = roundtrip(
                Message(source=1, dest=2, tag=tag, payload=i), seq=i
            )
            assert (seq, decoded.tag, decoded.payload) == (i, tag, i)


# ----------------------------------------------------------------------------
class TestFrameRejection:
    def test_truncated_header_rejected(self):
        frame = encode_frame(FRAME_MESSAGE, b"abc")
        with pytest.raises(TruncatedFrameError, match="header"):
            decode_frame(frame[: HEADER_SIZE - 2])

    def test_truncated_body_rejected(self):
        frame = encode_frame(FRAME_MESSAGE, b"x" * 100)
        with pytest.raises(TruncatedFrameError, match="body"):
            decode_frame(frame[:-1])

    def test_truncated_envelope_rejected(self):
        with pytest.raises(TruncatedFrameError, match="envelope"):
            decode_message(b"\x00\x01")

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame(FRAME_MESSAGE, b""))
        frame[:4] = b"HTTP"
        with pytest.raises(WireProtocolError, match="magic"):
            decode_frame(bytes(frame))

    def test_version_mismatch_rejected_with_both_versions_named(self):
        header = struct.Struct("!4sHBxI").pack(MAGIC, PROTOCOL_VERSION + 1, 3, 0)
        with pytest.raises(ProtocolVersionError) as excinfo:
            decode_frame(header)
        assert f"v{PROTOCOL_VERSION + 1}" in str(excinfo.value)
        assert f"v{PROTOCOL_VERSION}" in str(excinfo.value)

    def test_unknown_frame_kind_rejected(self):
        header = struct.Struct("!4sHBxI").pack(MAGIC, PROTOCOL_VERSION, 99, 0)
        with pytest.raises(WireProtocolError, match="kind"):
            decode_frame(header)

    def test_absurd_length_rejected_before_any_allocation(self):
        header = struct.Struct("!4sHBxI").pack(MAGIC, PROTOCOL_VERSION, 3, 2**31)
        with pytest.raises(WireProtocolError, match="sanity"):
            decode_frame(header)


# ----------------------------------------------------------------------------
class TestSocketFraming:
    def test_frames_survive_a_real_socket_pair(self):
        server, client = socket.socketpair()
        try:
            message = Message(
                source=2, dest=4, tag="EVAL", payload=np.arange(10_000, dtype=float)
            )
            write_frame(client, FRAME_MESSAGE, encode_message(message, seq=9))
            kind, body = read_frame(server)
            assert kind == FRAME_MESSAGE
            seq, decoded = decode_message(body)
            assert seq == 9
            np.testing.assert_array_equal(decoded.payload, message.payload)
        finally:
            server.close()
            client.close()

    def test_clean_eof_at_boundary_is_none_mid_frame_raises(self):
        server, client = socket.socketpair()
        try:
            client.close()
            assert read_frame(server) is None
        finally:
            server.close()

        server, client = socket.socketpair()
        try:
            frame = encode_frame(FRAME_MESSAGE, b"x" * 64)
            client.sendall(frame[:10])
            client.close()
            with pytest.raises(TruncatedFrameError):
                read_frame(server)
        finally:
            server.close()


# ----------------------------------------------------------------------------
class TestConnectWithBackoff:
    def test_listener_dropping_first_connection_is_retried(self):
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        accepted = []

        def serve():
            # Drop the first dial before WELCOME, complete the second.
            first, _ = listener.accept()
            first.close()
            second, _ = listener.accept()
            frame = read_frame(second)
            assert frame is not None and frame[0] == FRAME_HELLO
            (rank,) = _HELLO.unpack(frame[1])
            accepted.append(rank)
            write_frame(second, FRAME_WELCOME, _HELLO.pack(rank))
            second.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        sock = connect_with_backoff(
            ("127.0.0.1", port), hello=6, attempts=5, base_delay=0.01
        )
        sock.close()
        thread.join(timeout=5.0)
        listener.close()
        assert accepted == [6]

    def test_unreachable_address_exhausts_budget_with_connection_error(self):
        port = free_localhost_port()  # allocated then released: nobody listens
        with pytest.raises(ConnectionError, match="after 2 attempt"):
            connect_with_backoff(
                ("127.0.0.1", port), hello=0, attempts=2, base_delay=0.01
            )

    def test_version_mismatch_is_not_retried(self):
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        dials = []

        def serve():
            while True:
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                dials.append(1)
                read_frame(conn)
                # answer with a frame from a future protocol version
                conn.sendall(
                    struct.Struct("!4sHBxI").pack(
                        MAGIC, PROTOCOL_VERSION + 7, FRAME_WELCOME, 0
                    )
                )
                conn.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        with pytest.raises(ProtocolVersionError):
            connect_with_backoff(
                ("127.0.0.1", port), hello=0, attempts=5, base_delay=0.01
            )
        listener.close()
        thread.join(timeout=5.0)
        assert len(dials) == 1, "a version skew must fail fast, not burn retries"


# ----------------------------------------------------------------------------
# payload codec: out-of-band ndarray framing (repro.parallel.wire)
# ----------------------------------------------------------------------------

from repro.parallel.wire import (  # noqa: E402  (grouped with the suite they test)
    WIRE_CODEC_VERSION,
    MessageBatch,
    WireCounters,
    _ArraySlot,
    decode_payload,
    dispose_item,
    encode_payload,
    iter_bodies,
    pack_bodies,
    patch_seq,
    payload_array_nbytes,
    peek_dest,
    peek_seq,
    read_slab,
    write_slab,
)


def payload_roundtrip(obj):
    return decode_payload(encode_payload(obj))


class TestPayloadCodecRoundTrip:
    def test_zero_d_array(self):
        decoded = payload_roundtrip(np.array(3.5))
        assert decoded.shape == ()
        assert decoded.dtype == np.float64
        assert decoded == 3.5

    def test_empty_array(self):
        decoded = payload_roundtrip(np.empty((0, 5), dtype=np.float32))
        assert decoded.shape == (0, 5)
        assert decoded.dtype == np.float32

    def test_fortran_ordered_array_bitwise(self):
        array = np.asfortranarray(np.arange(35.0).reshape(7, 5))
        assert array.flags.f_contiguous and not array.flags.c_contiguous
        decoded = payload_roundtrip(array)
        np.testing.assert_array_equal(decoded, array)
        assert decoded.flags.f_contiguous

    def test_non_contiguous_array_bitwise(self):
        base = np.arange(120.0).reshape(10, 12)
        sliced = base[::2, ::3]
        assert not sliced.flags.c_contiguous
        decoded = payload_roundtrip(sliced)
        np.testing.assert_array_equal(decoded, sliced)

    @pytest.mark.parametrize("dtype", [np.float32, np.float64])
    def test_megabyte_array_bitwise(self, dtype):
        rng = np.random.default_rng(3)
        array = rng.standard_normal(1_100_000 // np.dtype(dtype).itemsize).astype(dtype)
        decoded = payload_roundtrip(array)
        np.testing.assert_array_equal(decoded, array)
        assert decoded.dtype == dtype

    def test_nested_tuple_payload_bitwise(self):
        payload = (
            np.arange(6, dtype=np.int64),
            [np.ones((2, 3), dtype=np.float32), "label"],
            {"qoi": np.linspace(0.0, 1.0, 17), "count": 4},
        )
        decoded = payload_roundtrip(payload)
        np.testing.assert_array_equal(decoded[0], payload[0])
        np.testing.assert_array_equal(decoded[1][0], payload[1][0])
        assert decoded[1][1] == "label"
        np.testing.assert_array_equal(decoded[2]["qoi"], payload[2]["qoi"])
        assert decoded[2]["count"] == 4

    def test_arrayless_payload_stays_in_pickle_mode(self):
        buf = encode_payload({"n": 4, "tags": ["a", "b"]})
        assert buf[1] == 0  # _MODE_PICKLE
        assert decode_payload(buf) == {"n": 4, "tags": ["a", "b"]}

    def test_object_dtype_falls_back_to_pickle(self):
        array = np.array([{"a": 1}, None], dtype=object)
        buf = encode_payload(array)
        assert buf[1] == 0  # _MODE_PICKLE: object buffers cannot go out-of-band
        decoded = decode_payload(buf)
        assert decoded[0] == {"a": 1} and decoded[1] is None

    def test_decoded_arrays_are_readonly_views(self):
        decoded = payload_roundtrip(np.arange(5.0))
        assert not decoded.flags.writeable
        with pytest.raises(ValueError):
            decoded[0] = 99.0

    def test_counters_track_oob_traffic(self):
        counters = WireCounters()
        array = np.arange(64, dtype=np.float64)
        encode_payload((array, array.astype(np.float32)), counters)
        assert counters.oob_arrays == 2
        assert counters.oob_bytes == array.nbytes + array.nbytes // 2

    def test_payload_array_nbytes_scans_containers(self):
        array = np.zeros(100, dtype=np.float64)
        assert payload_array_nbytes({"a": [array, (array,)]}) == 2 * array.nbytes
        assert payload_array_nbytes("no arrays here") == 0


class TestPayloadCodecRejection:
    def test_truncated_preamble_rejected(self):
        with pytest.raises(TruncatedFrameError, match="preamble"):
            decode_payload(b"\x01")

    def test_codec_version_mismatch_rejected(self):
        buf = bytearray(encode_payload(np.arange(3.0)))
        buf[0] = WIRE_CODEC_VERSION + 1
        with pytest.raises(WireProtocolError, match="codec version"):
            decode_payload(bytes(buf))

    def test_unknown_mode_rejected(self):
        buf = bytearray(encode_payload(np.arange(3.0)))
        buf[1] = 9
        with pytest.raises(WireProtocolError, match="mode"):
            decode_payload(bytes(buf))

    def test_skewed_array_header_rejected(self):
        # one 1-D float64 array: nbytes field sits right after the preamble
        # (2), count (4), block head (3), dtype string ('<f8', 3) and the one
        # shape dimension (8) — corrupt it so shape and byte count disagree.
        buf = bytearray(encode_payload(np.arange(4.0)))
        offset = 2 + 4 + 3 + 3 + 8
        struct.pack_into("!Q", buf, offset, 4 * 8 + 8)
        with pytest.raises(WireProtocolError, match="skewed"):
            decode_payload(bytes(buf))

    def test_truncated_array_buffer_rejected(self):
        buf = encode_payload(np.arange(4.0))
        with pytest.raises(TruncatedFrameError, match="array block"):
            decode_payload(buf[: 2 + 4 + 3 + 3 + 8 + 8 + 11])

    def test_slot_out_of_range_rejected(self):
        # a skeleton referencing a block that was never framed must fail
        # loudly, not dereference garbage
        buf = encode_payload((np.arange(3.0), _ArraySlot(5)))
        with pytest.raises(WireProtocolError, match="block"):
            decode_payload(buf)


class TestEnvelopeHelpers:
    def test_peek_and_patch_seq_without_payload_decode(self):
        message = Message(source=2, dest=9, tag="COLLECT", payload=np.arange(8.0))
        body = bytearray(encode_message(message, seq=7))
        assert peek_seq(body) == 7
        assert peek_dest(body) == 9
        patch_seq(body, 123456)
        seq, decoded = decode_message(bytes(body))
        assert seq == 123456
        np.testing.assert_array_equal(decoded.payload, message.payload)

    def test_peek_on_truncated_envelope_rejected(self):
        with pytest.raises(TruncatedFrameError):
            peek_seq(b"\x00\x01")
        with pytest.raises(TruncatedFrameError):
            peek_dest(b"\x00\x01")

    def test_batch_blob_roundtrips_bitwise(self):
        bodies = [
            encode_message(Message(source=0, dest=r, tag=f"T{r}", payload=r), seq=r)
            for r in range(3)
        ]
        unpacked = list(iter_bodies(pack_bodies(bodies)))
        assert [bytes(b) for b in unpacked] == bodies
        for r, body in enumerate(unpacked):
            seq, decoded = decode_message(body)
            assert (seq, decoded.dest, decoded.tag, decoded.payload) == (r, r, f"T{r}", r)

    def test_truncated_batch_blob_rejected(self):
        blob = pack_bodies(
            [encode_message(Message(source=0, dest=1, tag="X", payload="y"))]
        )
        with pytest.raises(TruncatedFrameError):
            list(iter_bodies(blob[:-3]))
        with pytest.raises(TruncatedFrameError):
            list(iter_bodies(blob[:2]))


class TestSharedMemoryLane:
    def test_slab_roundtrip_and_single_delivery_lifetime(self):
        body = encode_message(
            Message(source=1, dest=2, tag="BIG", payload=np.arange(50_000.0))
        )
        ref = write_slab(body)
        assert ref.nbytes == len(body)
        assert read_slab(ref) == body
        # the read unlinked the slab: a second delivery must fail loudly
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=ref.name)

    def test_dispose_item_unlinks_unconsumed_slabs(self):
        from multiprocessing import shared_memory

        ref = write_slab(b"x" * 4096)
        dispose_item(MessageBatch([(MessageBatch.LANE_SHM, ref)]))
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=ref.name)

    def test_dispose_item_ignores_plain_messages_and_inline_entries(self):
        dispose_item(Message(source=0, dest=1, tag="A", payload=None))
        dispose_item(MessageBatch([(MessageBatch.LANE_INLINE, b"body")]))
