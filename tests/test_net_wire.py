"""Wire format and bootstrap of the socket transport (`repro.parallel.net`).

Framing must be *boringly* strict: every `Message` variant round-trips
bitwise (zero-length payloads, large ndarrays, metadata), while truncated
frames, foreign magic and mismatched protocol versions are rejected loudly —
never silently misparsed.  The rendezvous bootstrap must survive a listener
that drops the first connection (backoff + retry) and must *not* retry a
protocol-version mismatch.
"""

from __future__ import annotations

import socket
import struct
import threading

import numpy as np
import pytest

from conftest import free_localhost_port
from repro.parallel.net import (
    FRAME_HELLO,
    FRAME_MESSAGE,
    FRAME_WELCOME,
    HEADER_SIZE,
    MAGIC,
    PROTOCOL_VERSION,
    ProtocolVersionError,
    TruncatedFrameError,
    WireProtocolError,
    _HELLO,
    connect_with_backoff,
    decode_frame,
    decode_message,
    encode_frame,
    encode_message,
    read_frame,
    write_frame,
)
from repro.parallel.transport import Message


def roundtrip(message: Message, seq: int = 0) -> tuple[int, Message]:
    kind, body = decode_frame(encode_frame(FRAME_MESSAGE, encode_message(message, seq)))
    assert kind == FRAME_MESSAGE
    return decode_message(body)


# ----------------------------------------------------------------------------
class TestMessageRoundTrip:
    def test_plain_payload(self):
        original = Message(source=3, dest=7, tag="SAMPLE_REQUEST", payload={"n": 4})
        seq, decoded = roundtrip(original, seq=42)
        assert seq == 42
        assert decoded.source == 3 and decoded.dest == 7
        assert decoded.tag == "SAMPLE_REQUEST"
        assert decoded.payload == {"n": 4}

    def test_zero_length_payload_and_empty_tag(self):
        original = Message(source=0, dest=1, tag="", payload=None)
        _, decoded = roundtrip(original)
        assert decoded.tag == ""
        assert decoded.payload is None
        assert decoded.metadata == {}

    def test_large_ndarray_payload_is_bitwise_preserved(self):
        rng = np.random.default_rng(0)
        array = rng.standard_normal((512, 257))  # ~1 MB, larger than any recv chunk
        original = Message(source=1, dest=2, tag="CORRECTION_BATCH", payload=array)
        _, decoded = roundtrip(original)
        np.testing.assert_array_equal(decoded.payload, array)
        assert decoded.payload.dtype == array.dtype

    def test_timestamps_metadata_and_negative_ranks_survive(self):
        # DRIVER_RANK injections use source=-1; the envelope must carry it.
        original = Message(
            source=-1,
            dest=5,
            tag="COLLECT",
            payload=(0, 60),
            send_time=1.25,
            delivery_time=2.5,
            metadata={"resumed": True},
        )
        _, decoded = roundtrip(original)
        assert decoded.source == -1
        assert decoded.send_time == 1.25 and decoded.delivery_time == 2.5
        assert decoded.metadata == {"resumed": True}

    def test_every_role_protocol_tag_roundtrips(self):
        from repro.parallel.roles.protocol import Tags

        tags = [
            value
            for name, value in vars(Tags).items()
            if not name.startswith("_") and isinstance(value, str)
        ]
        assert tags, "tag vocabulary went missing"
        for i, tag in enumerate(tags):
            seq, decoded = roundtrip(
                Message(source=1, dest=2, tag=tag, payload=i), seq=i
            )
            assert (seq, decoded.tag, decoded.payload) == (i, tag, i)


# ----------------------------------------------------------------------------
class TestFrameRejection:
    def test_truncated_header_rejected(self):
        frame = encode_frame(FRAME_MESSAGE, b"abc")
        with pytest.raises(TruncatedFrameError, match="header"):
            decode_frame(frame[: HEADER_SIZE - 2])

    def test_truncated_body_rejected(self):
        frame = encode_frame(FRAME_MESSAGE, b"x" * 100)
        with pytest.raises(TruncatedFrameError, match="body"):
            decode_frame(frame[:-1])

    def test_truncated_envelope_rejected(self):
        with pytest.raises(TruncatedFrameError, match="envelope"):
            decode_message(b"\x00\x01")

    def test_bad_magic_rejected(self):
        frame = bytearray(encode_frame(FRAME_MESSAGE, b""))
        frame[:4] = b"HTTP"
        with pytest.raises(WireProtocolError, match="magic"):
            decode_frame(bytes(frame))

    def test_version_mismatch_rejected_with_both_versions_named(self):
        header = struct.Struct("!4sHBxI").pack(MAGIC, PROTOCOL_VERSION + 1, 3, 0)
        with pytest.raises(ProtocolVersionError) as excinfo:
            decode_frame(header)
        assert f"v{PROTOCOL_VERSION + 1}" in str(excinfo.value)
        assert f"v{PROTOCOL_VERSION}" in str(excinfo.value)

    def test_unknown_frame_kind_rejected(self):
        header = struct.Struct("!4sHBxI").pack(MAGIC, PROTOCOL_VERSION, 99, 0)
        with pytest.raises(WireProtocolError, match="kind"):
            decode_frame(header)

    def test_absurd_length_rejected_before_any_allocation(self):
        header = struct.Struct("!4sHBxI").pack(MAGIC, PROTOCOL_VERSION, 3, 2**31)
        with pytest.raises(WireProtocolError, match="sanity"):
            decode_frame(header)


# ----------------------------------------------------------------------------
class TestSocketFraming:
    def test_frames_survive_a_real_socket_pair(self):
        server, client = socket.socketpair()
        try:
            message = Message(
                source=2, dest=4, tag="EVAL", payload=np.arange(10_000, dtype=float)
            )
            write_frame(client, FRAME_MESSAGE, encode_message(message, seq=9))
            kind, body = read_frame(server)
            assert kind == FRAME_MESSAGE
            seq, decoded = decode_message(body)
            assert seq == 9
            np.testing.assert_array_equal(decoded.payload, message.payload)
        finally:
            server.close()
            client.close()

    def test_clean_eof_at_boundary_is_none_mid_frame_raises(self):
        server, client = socket.socketpair()
        try:
            client.close()
            assert read_frame(server) is None
        finally:
            server.close()

        server, client = socket.socketpair()
        try:
            frame = encode_frame(FRAME_MESSAGE, b"x" * 64)
            client.sendall(frame[:10])
            client.close()
            with pytest.raises(TruncatedFrameError):
                read_frame(server)
        finally:
            server.close()


# ----------------------------------------------------------------------------
class TestConnectWithBackoff:
    def test_listener_dropping_first_connection_is_retried(self):
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        accepted = []

        def serve():
            # Drop the first dial before WELCOME, complete the second.
            first, _ = listener.accept()
            first.close()
            second, _ = listener.accept()
            frame = read_frame(second)
            assert frame is not None and frame[0] == FRAME_HELLO
            (rank,) = _HELLO.unpack(frame[1])
            accepted.append(rank)
            write_frame(second, FRAME_WELCOME, _HELLO.pack(rank))
            second.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        sock = connect_with_backoff(
            ("127.0.0.1", port), hello=6, attempts=5, base_delay=0.01
        )
        sock.close()
        thread.join(timeout=5.0)
        listener.close()
        assert accepted == [6]

    def test_unreachable_address_exhausts_budget_with_connection_error(self):
        port = free_localhost_port()  # allocated then released: nobody listens
        with pytest.raises(ConnectionError, match="after 2 attempt"):
            connect_with_backoff(
                ("127.0.0.1", port), hello=0, attempts=2, base_delay=0.01
            )

    def test_version_mismatch_is_not_retried(self):
        listener = socket.create_server(("127.0.0.1", 0))
        port = listener.getsockname()[1]
        dials = []

        def serve():
            while True:
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                dials.append(1)
                read_frame(conn)
                # answer with a frame from a future protocol version
                conn.sendall(
                    struct.Struct("!4sHBxI").pack(
                        MAGIC, PROTOCOL_VERSION + 7, FRAME_WELCOME, 0
                    )
                )
                conn.close()

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        with pytest.raises(ProtocolVersionError):
            connect_with_backoff(
                ("127.0.0.1", port), hello=0, attempts=5, base_delay=0.01
            )
        listener.close()
        thread.join(timeout=5.0)
        assert len(dials) == 1, "a version skew must fail fast, not burn retries"
