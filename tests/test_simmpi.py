"""Tests for the simulated-MPI discrete-event substrate."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.parallel.simmpi import Message, RankProcess, VirtualWorld
from repro.parallel.trace import TraceRecorder


class Echo(RankProcess):
    role = "echo"

    def __init__(self, rank, peer, count):
        super().__init__(rank)
        self.peer = peer
        self.count = count
        self.received = []

    def run(self):
        for i in range(self.count):
            yield self.send(self.peer, "PING", {"i": i})
            msg = yield self.recv("PONG")
            self.received.append(msg.payload["i"])


class Responder(RankProcess):
    role = "responder"

    def __init__(self, rank, count):
        super().__init__(rank)
        self.count = count

    def run(self):
        for _ in range(self.count):
            msg = yield self.recv("PING")
            yield self.compute(1.0, kind="model_eval", level=0)
            yield self.send(msg.source, "PONG", {"i": msg.payload["i"]})


class TestVirtualWorld:
    def test_request_response_round_trips(self):
        world = VirtualWorld(latency=0.1)
        world.add_process(Echo(0, peer=1, count=5))
        world.add_process(Responder(1, count=5))
        world.run()
        assert world.unfinished_ranks() == []
        echo = world.processes[0]
        assert echo.received == [0, 1, 2, 3, 4]
        # 5 computes of 1s plus round-trip latencies
        assert world.now == pytest.approx(5 * (1.0 + 0.2), rel=0.05)
        assert world.messages_sent == 10

    def test_compute_advances_time_and_traces(self):
        class Worker(RankProcess):
            def run(self):
                yield self.compute(2.5, kind="model_eval", level=1)
                yield self.compute(1.5, kind="burnin", level=1)

        world = VirtualWorld()
        world.add_process(Worker(0))
        world.run()
        assert world.now == pytest.approx(4.0)
        events = world.trace.events()
        assert len(events) == 2
        assert events[0].kind == "model_eval" and events[0].duration == pytest.approx(2.5)
        assert world.trace.busy_time(0) == pytest.approx(4.0)

    def test_messages_are_fifo_per_pair(self):
        class Sender(RankProcess):
            def run(self):
                for i in range(10):
                    yield self.send(1, "DATA", i)

        class Receiver(RankProcess):
            def __init__(self, rank):
                super().__init__(rank)
                self.got = []

            def run(self):
                for _ in range(10):
                    msg = yield self.recv("DATA")
                    self.got.append(msg.payload)

        world = VirtualWorld()
        world.add_process(Sender(0))
        receiver = Receiver(1)
        world.add_process(receiver)
        world.run()
        assert receiver.got == list(range(10))

    def test_recv_matches_by_tag_and_source(self):
        class Mixed(RankProcess):
            def __init__(self, rank):
                super().__init__(rank)
                self.order = []

            def run(self):
                msg = yield self.recv("B")
                self.order.append(msg.tag)
                msg = yield self.recv("A")
                self.order.append(msg.tag)

        class Producer(RankProcess):
            def run(self):
                yield self.send(0, "A", None)
                yield self.send(0, "B", None)

        world = VirtualWorld()
        mixed = Mixed(0)
        world.add_process(mixed)
        world.add_process(Producer(1))
        world.run()
        assert mixed.order == ["B", "A"]

    def test_try_recv_and_pending_count(self):
        class Peeker(RankProcess):
            def __init__(self, rank):
                super().__init__(rank)
                self.seen = None
                self.pending_before = -1

            def run(self):
                # wait until something is delivered
                msg = yield self.recv("X")
                self.pending_before = self.pending_count("Y")
                self.seen = self.try_recv("Y")
                yield self.compute(0.0)

        class Sender(RankProcess):
            def run(self):
                yield self.send(0, "Y", 1)
                yield self.send(0, "X", 2)

        world = VirtualWorld()
        peeker = Peeker(0)
        world.add_process(peeker)
        world.add_process(Sender(1))
        world.run()
        assert peeker.pending_before == 1
        assert peeker.seen is not None and peeker.seen.payload == 1

    def test_deadlock_leaves_unfinished_ranks(self):
        class Waiter(RankProcess):
            def run(self):
                yield self.recv("NEVER")

        world = VirtualWorld()
        world.add_process(Waiter(0))
        world.run()
        assert world.unfinished_ranks() == [0]

    def test_duplicate_rank_rejected(self):
        world = VirtualWorld()
        world.add_process(Responder(0, 1))
        with pytest.raises(ValueError):
            world.add_process(Responder(0, 1))

    def test_determinism(self):
        def build():
            world = VirtualWorld(latency=0.05)
            world.add_process(Echo(0, peer=1, count=8))
            world.add_process(Responder(1, count=8))
            world.run()
            return world.now, world.messages_sent, world.events_processed

        assert build() == build()

    def test_summary_fields(self):
        world = VirtualWorld()
        world.add_process(Responder(0, 0))
        world.run()
        summary = world.summary()
        assert set(summary) == {"virtual_time", "num_ranks", "messages_sent", "events_processed"}

    @given(latency=st.floats(1e-4, 0.5), count=st.integers(1, 10))
    @settings(max_examples=15, deadline=None)
    def test_property_makespan_scales_with_latency_and_count(self, latency, count):
        world = VirtualWorld(latency=latency)
        world.add_process(Echo(0, peer=1, count=count))
        world.add_process(Responder(1, count=count))
        world.run()
        assert world.now == pytest.approx(count * (1.0 + 2 * latency), rel=1e-6)


class TestTraceRecorder:
    def test_utilization_and_gantt(self):
        trace = TraceRecorder()
        trace.record(0, 0.0, 2.0, "model_eval", level=0)
        trace.record(0, 2.0, 3.0, "wait")
        trace.record(1, 0.0, 3.0, "model_eval", level=1)
        assert trace.makespan == 3.0
        assert trace.busy_time(0) == pytest.approx(2.0)
        assert trace.utilization([0, 1]) == pytest.approx((2.0 / 3.0 + 1.0) / 2.0)
        rows = trace.gantt_rows()
        assert len(rows[0]) == 2
        per_level = trace.per_level_busy_time()
        assert per_level[0] == pytest.approx(2.0)
        assert per_level[1] == pytest.approx(3.0)

    def test_disabled_recorder_ignores_events(self):
        trace = TraceRecorder(enabled=False)
        trace.record(0, 0.0, 1.0, "model_eval")
        assert len(trace) == 0
        # Disabled tracing must be distinguishable from a genuinely idle
        # machine: utilization is NaN, not a plausible-looking 0.0.
        assert math.isnan(trace.utilization())

    def test_zero_length_intervals_ignored(self):
        trace = TraceRecorder()
        trace.record(0, 1.0, 1.0, "compute")
        assert len(trace) == 0

    def test_ascii_rendering(self):
        trace = TraceRecorder()
        trace.record(0, 0.0, 1.0, "model_eval")
        trace.record(1, 0.5, 1.0, "burnin")
        art = trace.render_ascii(width=20)
        assert "rank    0" in art and "#" in art and "o" in art
        assert TraceRecorder().render_ascii() == "(empty trace)"
