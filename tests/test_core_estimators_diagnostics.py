"""Tests for estimators (telescoping sum, MC baseline, allocation) and diagnostics."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.diagnostics import diagnose_collection, gelman_rubin
from repro.core.estimators import (
    MonteCarloEstimate,
    MultilevelEstimate,
    optimal_sample_allocation,
)
from repro.core.sample_collection import CorrectionCollection, SampleCollection
from repro.core.state import SamplingState


def _correction(level: int, fine: np.ndarray, coarse: np.ndarray | None) -> CorrectionCollection:
    collection = CorrectionCollection(level)
    for i in range(fine.shape[0]):
        collection.add(fine[i], None if coarse is None else coarse[i])
    return collection


class TestMultilevelEstimate:
    def test_telescoping_sum_identity(self, rng):
        # E[Q_0] + sum of corrections must equal the mean assembled by the estimator.
        q0 = rng.normal(1.0, 0.1, size=(500, 2))
        q1_fine = rng.normal(1.5, 0.1, size=(300, 2))
        q1_coarse = rng.normal(1.0, 0.1, size=(300, 2))
        corrections = [
            _correction(0, q0, None),
            _correction(1, q1_fine, q1_coarse),
        ]
        estimate = MultilevelEstimate.from_corrections(corrections, costs_per_sample=[1.0, 4.0])
        expected = q0.mean(axis=0) + (q1_fine - q1_coarse).mean(axis=0)
        np.testing.assert_allclose(estimate.mean, expected, rtol=1e-12)
        cumulative = estimate.cumulative_means()
        np.testing.assert_allclose(cumulative[0], q0.mean(axis=0))
        np.testing.assert_allclose(cumulative[-1], estimate.mean)

    def test_costs_and_summary(self, rng):
        corrections = [
            _correction(0, rng.normal(size=(100, 1)), None),
            _correction(1, rng.normal(size=(50, 1)), rng.normal(size=(50, 1))),
        ]
        estimate = MultilevelEstimate.from_corrections(corrections, costs_per_sample=[0.1, 1.0])
        assert estimate.total_cost == pytest.approx(100 * 0.1 + 50 * 1.0)
        summary = estimate.summary()
        assert len(summary) == 2
        assert summary[1]["num_samples"] == 50

    def test_mixed_empty_level_raises_instead_of_silent_corruption(self, rng):
        # Regression: np.zeros(0) + np.zeros(d) broadcasts to shape (0,), so a
        # single empty level used to silently discard every other level's
        # contribution from the telescoping sum.
        corrections = [
            _correction(0, rng.normal(size=(50, 2)), None),
            CorrectionCollection(1),  # a level that never reported
            _correction(2, rng.normal(size=(20, 2)), rng.normal(size=(20, 2))),
        ]
        estimate = MultilevelEstimate.from_corrections(corrections)
        with pytest.raises(ValueError, match=r"level\(s\) \[1\]"):
            _ = estimate.mean
        with pytest.raises(ValueError, match="empty"):
            estimate.cumulative_means()

    def test_all_levels_empty_keeps_legacy_empty_mean(self):
        estimate = MultilevelEstimate.from_corrections(
            [CorrectionCollection(0), CorrectionCollection(1)]
        )
        assert estimate.mean.size == 0
        assert MultilevelEstimate(contributions=[]).mean.size == 0

    def test_estimator_variance_decreases_with_samples(self, rng):
        small = MultilevelEstimate.from_corrections(
            [_correction(0, rng.normal(size=(50, 1)), None)]
        )
        large = MultilevelEstimate.from_corrections(
            [_correction(0, rng.normal(size=(5000, 1)), None)]
        )
        assert large.estimator_variance()[0] < small.estimator_variance()[0]

    def test_mse_against_reference(self, rng):
        corrections = [_correction(0, np.full((100, 2), 3.0), None)]
        estimate = MultilevelEstimate.from_corrections(corrections)
        assert estimate.mean_squared_error(np.array([3.0, 3.0])) == pytest.approx(0.0)
        assert estimate.mean_squared_error(np.array([4.0, 3.0])) == pytest.approx(0.5)


class TestMonteCarloEstimate:
    def test_from_samples(self, rng):
        collection = SampleCollection()
        data = rng.normal(2.0, 1.0, size=(500, 2))
        for row in data:
            collection.add(SamplingState(parameters=row, qoi=row))
        estimate = MonteCarloEstimate.from_samples(collection, cost_per_sample=0.5)
        np.testing.assert_allclose(estimate.mean, data.mean(axis=0))
        assert estimate.num_samples == 500
        assert estimate.total_cost == pytest.approx(250.0)
        assert estimate.ess > 100


class TestOptimalAllocation:
    def test_matches_mlmc_formula(self):
        variances = np.array([1.0, 0.1, 0.01])
        costs = np.array([1.0, 10.0, 100.0])
        eps2 = 1e-2
        counts = optimal_sample_allocation(variances, costs, eps2)
        total = np.sum(np.sqrt(variances * costs))
        expected = np.ceil(np.sqrt(variances / costs) * total / eps2)
        np.testing.assert_array_equal(counts, expected.astype(int))
        # coarse level gets the most samples
        assert counts[0] > counts[1] > counts[2]

    def test_allocation_achieves_target_variance(self):
        variances = np.array([2.0, 0.2])
        costs = np.array([1.0, 8.0])
        target = 1e-3
        counts = optimal_sample_allocation(variances, costs, target)
        achieved = np.sum(variances / counts)
        assert achieved <= target * 1.05

    def test_validation(self):
        with pytest.raises(ValueError):
            optimal_sample_allocation(np.array([1.0]), np.array([1.0, 2.0]), 0.1)
        with pytest.raises(ValueError):
            optimal_sample_allocation(np.array([1.0]), np.array([1.0]), -1.0)
        with pytest.raises(ValueError):
            optimal_sample_allocation(np.array([1.0]), np.array([0.0]), 0.1)

    @given(
        v0=st.floats(0.1, 10), v1=st.floats(0.001, 0.1), c1=st.floats(2, 100),
        eps=st.floats(1e-4, 1e-1),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_more_variance_means_more_samples(self, v0, v1, c1, eps):
        counts = optimal_sample_allocation(np.array([v0, v1]), np.array([1.0, c1]), eps)
        assert counts[0] >= 1 and counts[1] >= 1
        assert counts[0] >= counts[1]


class TestDiagnostics:
    def test_diagnose_collection(self, rng):
        collection = SampleCollection()
        for _ in range(300):
            collection.add(SamplingState(parameters=rng.normal(1.0, 2.0, size=2)))
        diag = diagnose_collection(collection)
        np.testing.assert_allclose(diag.mean, 1.0, atol=0.5)
        assert diag.num_samples == 300
        assert diag.ess > 50
        assert diag.iact >= 1.0
        assert "mean_norm" in diag.as_dict()

    def test_diagnose_empty(self):
        diag = diagnose_collection(SampleCollection())
        assert diag.num_samples == 0 and diag.ess == 0.0

    def test_gelman_rubin_converged_chains(self, rng):
        chains = [rng.normal(size=(2000, 2)) for _ in range(4)]
        rhat = gelman_rubin(chains)
        assert np.all(rhat < 1.1)

    def test_gelman_rubin_detects_disagreement(self, rng):
        chains = [rng.normal(0.0, 1.0, size=(500, 1)), rng.normal(5.0, 1.0, size=(500, 1))]
        rhat = gelman_rubin(chains)
        assert rhat[0] > 1.5

    def test_gelman_rubin_validation(self, rng):
        with pytest.raises(ValueError):
            gelman_rubin([rng.normal(size=(100, 1))])
        with pytest.raises(ValueError):
            gelman_rubin([np.zeros((1, 1)), np.zeros((1, 1))])
