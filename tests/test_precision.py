"""Mixed-precision ladder, array-API shim, and paired-dispatch tests.

Covers the three guarantees the precision subsystem makes:

* dtype parity — float32 forward solves agree with float64 within round-off
  on every application (analytic Gaussian, Poisson FEM, tsunami SWE), and
  observables always cross the observation boundary as ``float64``;
* estimator validity — a ``float32-coarse`` multilevel estimate stays within
  the statistical error of the all-double estimate (the telescoping sum
  absorbs coarse round-off bias like discretisation bias);
* paired dispatch — batching the (fine, coarse) correction QOIs through one
  evaluator call is bitwise identical to scalar dispatch, and never does
  *more* model work.
"""

from __future__ import annotations

import re
from pathlib import Path

import numpy as np
import pytest

from repro.core.mlmcmc import MLMCMCSampler
from repro.evaluation import CachingEvaluator
from repro.models.gaussian import GaussianHierarchyFactory, GaussianIdentityForwardModel
from repro.models.poisson import PoissonInverseProblemFactory
from repro.models.tsunami import TsunamiInverseProblemFactory, TsunamiLevelSpec
from repro.utils.array_api import (
    KNOWN_BACKENDS,
    PRECISION_LADDERS,
    array_namespace,
    backend_available,
    backend_name,
    level_dtype,
    level_dtypes,
    resolve_backend,
    resolve_dtype,
)


class TestArrayApiShim:
    def test_numpy_is_default_and_always_available(self):
        assert resolve_backend(None) is np
        assert resolve_backend("numpy") is np
        assert backend_available("numpy")

    def test_unknown_backend_name_rejected(self):
        with pytest.raises(ValueError, match="unknown array backend"):
            resolve_backend("jax")

    @pytest.mark.parametrize("name", ["cupy", "torch"])
    def test_optional_backends_gated_not_required(self, name):
        if backend_available(name):
            pytest.skip(f"{name} installed in this environment")
        with pytest.raises(ImportError, match=name):
            resolve_backend(name)

    def test_array_namespace_infers_numpy(self):
        assert array_namespace(np.zeros(3), np.float32(1.0)) is np
        assert array_namespace() is np
        assert array_namespace(None, [1.0, 2.0]) is np

    def test_backend_name_of_numpy(self):
        assert backend_name(np) == "numpy"
        assert "numpy" in KNOWN_BACKENDS

    def test_resolve_dtype(self):
        assert resolve_dtype(None) == np.dtype(np.float64)
        assert resolve_dtype("float32") == np.dtype(np.float32)
        assert resolve_dtype(np.float64) == np.dtype(np.float64)
        with pytest.raises(ValueError, match="unsupported kernel dtype"):
            resolve_dtype(np.int64)

    def test_level_dtypes_ladders(self):
        f32, f64 = np.dtype(np.float32), np.dtype(np.float64)
        assert level_dtypes("float64", 3) == [f64, f64, f64]
        assert level_dtypes(None, 2) == [f64, f64]
        assert level_dtypes("float32", 3) == [f32, f32, f32]
        assert level_dtypes("float32-coarse", 3) == [f32, f32, f64]
        # a single-level "hierarchy" has no coarse rung to downgrade
        assert level_dtypes("float32-coarse", 1) == [f64]
        assert level_dtype("float32-coarse", 0, 3) == f32
        assert level_dtype("float32-coarse", 2, 3) == f64

    def test_level_dtypes_errors(self):
        with pytest.raises(ValueError, match="unknown precision ladder"):
            level_dtypes("half", 2)
        with pytest.raises(ValueError, match="at least one level"):
            level_dtypes("float64", 0)
        with pytest.raises(ValueError, match="outside hierarchy"):
            level_dtype("float64", 3, 3)
        assert PRECISION_LADDERS == ("float64", "float32-coarse", "float32")


class TestDtypeParity:
    """float32 forward solves track float64 within round-off, outputs stay double."""

    def test_gaussian_identity_rounds_through_float32(self):
        theta = np.array([0.123456789123456, -1.987654321987654])
        m64 = GaussianIdentityForwardModel(dim=2)
        m32 = GaussianIdentityForwardModel(dim=2, dtype=np.float32)
        out64, out32 = m64.forward(theta), m32.forward(theta)
        assert out64.dtype == np.float64 and out32.dtype == np.float64
        assert np.array_equal(out64, theta)
        assert np.array_equal(out32, theta.astype(np.float32).astype(np.float64))
        np.testing.assert_allclose(out32, out64, rtol=1e-6)

    def test_poisson_forward_parity(self):
        kwargs = dict(
            mesh_sizes=(8, 16),
            num_kl_modes=16,
            quadrature_points_per_dim=10,
            qoi_resolution=8,
            subsampling_rates=[0, 4],
            pcn_beta=0.4,
        )
        f64 = PoissonInverseProblemFactory(**kwargs)
        f32 = PoissonInverseProblemFactory(precision="float32", **kwargs)
        theta = np.random.default_rng(3).normal(size=16)
        for level in range(2):
            out64 = f64.forward_model(level).forward(theta)
            out32 = f32.forward_model(level).forward(theta)
            assert out64.dtype == np.float64 and out32.dtype == np.float64
            assert not np.array_equal(out32, out64)  # genuinely solved in single
            np.testing.assert_allclose(out32, out64, rtol=1e-3, atol=1e-5)

    def test_poisson_float32_batch_matches_scalar_rows(self):
        factory = PoissonInverseProblemFactory(
            mesh_sizes=(8,),
            num_kl_modes=16,
            quadrature_points_per_dim=10,
            qoi_resolution=8,
            subsampling_rates=[0],
            pcn_beta=0.4,
            precision="float32",
        )
        model = factory.forward_model(0)
        block = np.random.default_rng(4).normal(size=(5, 16))
        batched = model.forward_batch(block)
        for row, theta in zip(batched, block):
            assert np.array_equal(row, model.forward(theta))

    def test_tsunami_forward_parity(self):
        specs = (
            TsunamiLevelSpec(0, 12, "constant", False, 0.15, 2.5),
            TsunamiLevelSpec(1, 24, "smoothed", True, 0.10, 1.5, smoothing_passes=2),
        )
        f64 = TsunamiInverseProblemFactory(
            level_specs=specs, end_time=900.0, subsampling_rates=[0, 2]
        )
        f32 = TsunamiInverseProblemFactory(
            level_specs=specs,
            end_time=900.0,
            subsampling_rates=[0, 2],
            precision="float32",
        )
        theta = np.array([15.0, -20.0])
        num_gauges = len(f64.forward_model(0).scenario.gauges)
        for level in range(2):
            out64 = f64.forward_model(level).forward(theta)
            out32 = f32.forward_model(level).forward(theta)
            assert out64.dtype == np.float64 and out32.dtype == np.float64
            # wave heights (metres) agree to well below the observation noise;
            # arrival times are argmax picks and may shift by an output step,
            # so only sanity-check them.
            np.testing.assert_allclose(
                out32[:num_gauges], out64[:num_gauges], atol=0.05
            )
            assert np.all(np.isfinite(out32))


class TestMixedPrecisionEstimate:
    def _stderr(self, result) -> float:
        return float(
            np.sqrt(
                sum(
                    np.max(c.variance()) / max(1, len(c))
                    for c in result.corrections
                )
            )
        )

    def test_gaussian_float32_coarse_within_statistical_error(self):
        def run(precision):
            factory = GaussianHierarchyFactory(
                dim=2, num_levels=3, precision=precision
            )
            sampler = MLMCMCSampler(
                factory,
                num_samples=[400, 100, 40],
                burnin=[40, 10, 5],
                subsampling_rates=[0, 5, 4],
                seed=2024,
            )
            return sampler.run()

        r64, r32c = run(None), run("float32-coarse")
        stderr = self._stderr(r64)
        assert np.max(np.abs(r32c.mean - r64.mean)) <= 4.0 * stderr

    def test_poisson_float32_coarse_within_statistical_error(self):
        def run(precision):
            factory = PoissonInverseProblemFactory(
                mesh_sizes=(8, 16),
                num_kl_modes=16,
                quadrature_points_per_dim=10,
                qoi_resolution=8,
                subsampling_rates=[0, 4],
                pcn_beta=0.4,
                precision=precision,
            )
            sampler = MLMCMCSampler(
                factory, num_samples=[60, 20], burnin=[5, 2], seed=11
            )
            return sampler.run()

        r64, r32c = run(None), run("float32-coarse")
        stderr = self._stderr(r64)
        assert np.max(np.abs(r32c.mean - r64.mean)) <= 4.0 * max(stderr, 1e-12)


class TestPairedDispatch:
    def _run(self, paired: bool):
        factory = GaussianHierarchyFactory(num_levels=3, dim=2)
        sampler = MLMCMCSampler(
            factory,
            num_samples=[120, 40, 15],
            burnin=[20, 6, 3],
            subsampling_rates=[0, 5, 4],
            seed=123,
            paired_dispatch=paired,
        )
        return sampler.run()

    def test_bitwise_identical_to_scalar_dispatch(self):
        scalar, paired = self._run(False), self._run(True)
        assert np.array_equal(scalar.mean, paired.mean)
        for level, (cs, cp) in enumerate(zip(scalar.corrections, paired.corrections)):
            assert len(cs) == len(cp)
            assert np.array_equal(cs.differences(), cp.differences()), level

    def test_pairs_fire_and_never_add_model_work(self):
        scalar, paired = self._run(False), self._run(True)
        pair_counts = [s.pair_dispatches for s in paired.evaluation_stats]
        assert all(s.pair_dispatches == 0 for s in scalar.evaluation_stats)
        # level 0 has no correction pair; both correction levels batch
        assert pair_counts[0] == 0
        assert pair_counts[1] > 0 and pair_counts[2] > 0
        for s_scalar, s_paired in zip(scalar.evaluation_stats, paired.evaluation_stats):
            assert s_paired.qoi_evaluations <= s_scalar.qoi_evaluations


class TestCacheKeys:
    def test_key_context_partitions_the_cache(self):
        theta = np.array([1.0, 2.0])
        level0 = CachingEvaluator(key_context="level=0")
        level1 = CachingEvaluator(key_context="level=1")
        assert level0._key("qoi", theta) != level1._key("qoi", theta)
        assert level0._key("qoi", theta) == CachingEvaluator(
            key_context="level=0"
        )._key("qoi", theta)

    def test_dtype_and_shape_enter_the_key(self):
        evaluator = CachingEvaluator()
        flat = np.array([1.0, 2.0, 3.0, 4.0])
        assert evaluator._key("qoi", flat) != evaluator._key(
            "qoi", flat.astype(np.float32)
        )
        # same bytes, different shape: must not collide
        assert evaluator._key("qoi", flat) != evaluator._key(
            "qoi", flat.reshape(2, 2)
        )
        assert evaluator._key("qoi", flat) != evaluator._key("density", flat)


class TestKernelDtypeHygiene:
    """Kernel modules must not hard-code ``dtype=float`` (always float64)."""

    KERNEL_MODULES = (
        "src/repro/swe/fv2d.py",
        "src/repro/swe/state.py",
        "src/repro/swe/riemann.py",
        "src/repro/swe/scenario.py",
        "src/repro/fem/assembly.py",
        "src/repro/fem/poisson.py",
    )

    def test_no_bare_dtype_float_in_kernel_modules(self):
        root = Path(__file__).resolve().parents[1]
        offenders = []
        for relative in self.KERNEL_MODULES:
            text = (root / relative).read_text(encoding="utf-8")
            for match in re.finditer(r"dtype=float[,)\s]", text):
                line = text.count("\n", 0, match.start()) + 1
                offenders.append(f"{relative}:{line}")
        assert not offenders, (
            "bare dtype=float coerces to float64 and silently defeats the "
            f"precision ladder; use the plan/solver dtype instead: {offenders}"
        )
