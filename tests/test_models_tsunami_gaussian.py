"""Tests for the tsunami inverse-problem hierarchy and the analytic Gaussian hierarchy."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import MLMCMCSampler
from repro.models.gaussian import GaussianHierarchyFactory
from repro.models.tsunami import PAPER_LEVEL_SPECS, TsunamiInverseProblemFactory, TsunamiLevelSpec


class TestGaussianHierarchy:
    def test_exact_moments(self):
        factory = GaussianHierarchyFactory(dim=2, num_levels=3, limit_mean=2.0, decay=0.5)
        np.testing.assert_allclose(factory.level_mean(0), [1.0, 1.0])
        np.testing.assert_allclose(factory.level_mean(2), [2.0 * (1 - 0.125)] * 2)
        np.testing.assert_allclose(factory.exact_mean(), factory.level_mean(2))
        np.testing.assert_allclose(
            factory.exact_correction(1), factory.level_mean(1) - factory.level_mean(0)
        )
        np.testing.assert_allclose(factory.exact_correction(0), factory.level_mean(0))

    def test_corrections_decay_geometrically(self):
        factory = GaussianHierarchyFactory(dim=1, num_levels=4, decay=0.5)
        corrections = [abs(factory.exact_correction(level)[0]) for level in range(1, 4)]
        ratios = [corrections[i + 1] / corrections[i] for i in range(2)]
        np.testing.assert_allclose(ratios, 0.5, rtol=1e-12)

    def test_costs_default_to_pde_scaling(self):
        factory = GaussianHierarchyFactory(num_levels=3)
        assert factory.problem_for_level(2).evaluation_cost() == pytest.approx(16.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianHierarchyFactory(num_levels=0)
        with pytest.raises(ValueError):
            GaussianHierarchyFactory(decay=1.5)

    def test_factory_interface_roundtrip(self):
        factory = GaussianHierarchyFactory(dim=3, num_levels=2)
        index_set = factory.index_set()
        assert len(index_set) == 2
        problem = factory.sampling_problem(index_set.finest)
        assert problem.dim == 3
        assert factory.starting_point(index_set.finest).shape == (3,)
        assert factory.subsampling_rate(index_set.finest) == factory.subsampling


class TestTsunamiFactory:
    def test_paper_defaults(self):
        assert PAPER_LEVEL_SPECS[0].num_cells == 25
        assert PAPER_LEVEL_SPECS[1].num_cells == 79
        assert PAPER_LEVEL_SPECS[2].num_cells == 241
        assert PAPER_LEVEL_SPECS[0].sigma_heights == 0.15
        assert PAPER_LEVEL_SPECS[2].sigma_times == 0.75
        assert not PAPER_LEVEL_SPECS[0].limiter and PAPER_LEVEL_SPECS[2].limiter

    def test_observation_table_layout(self, small_tsunami_factory):
        rows = small_tsunami_factory.observation_table()
        assert len(rows) == 4  # two buoys x (max height, arrival time)
        assert rows[0]["sigma_l0"] == pytest.approx(0.15)
        assert rows[2]["sigma_l1"] == pytest.approx(1.5)
        assert all(np.isfinite(row["mu"]) for row in rows)

    def test_level_summary(self, small_tsunami_factory):
        rows = small_tsunami_factory.level_summary()
        assert len(rows) == 2
        assert rows[0]["bathymetry"] == "constant"
        assert rows[1]["limiter"] is True

    def test_data_generated_from_finest_level(self, small_tsunami_factory):
        finest = small_tsunami_factory.num_levels() - 1
        observed = small_tsunami_factory.scenario.observe(
            finest, small_tsunami_factory.true_location
        )
        np.testing.assert_allclose(observed, small_tsunami_factory.data)

    def test_likelihood_is_level_dependent(self, small_tsunami_factory):
        like0 = small_tsunami_factory.likelihood_for_level(0)
        like1 = small_tsunami_factory.likelihood_for_level(1)
        assert like0.covariance_diagonal[0] > like1.covariance_diagonal[0]

    def test_posterior_prefers_truth_over_distant_sources(self, small_tsunami_factory):
        problem = small_tsunami_factory.problem_for_level(1)
        at_truth = problem.log_density(np.zeros(2))
        far_away = problem.log_density(np.array([90.0, 90.0]))
        assert at_truth > far_away

    def test_source_on_land_is_unphysical_but_finite(self, small_tsunami_factory):
        problem = small_tsunami_factory.problem_for_level(0)
        on_land = problem.log_density(np.array([-119.0, 0.0]))
        in_ocean = problem.log_density(np.array([10.0, 10.0]))
        assert on_land < in_ocean
        assert np.isfinite(on_land)  # "almost zero likelihood", not a crash

    def test_outside_prior_box_is_minus_infinity(self, small_tsunami_factory):
        problem = small_tsunami_factory.problem_for_level(0)
        assert problem.log_density(np.array([500.0, 0.0])) == -np.inf

    def test_qoi_is_the_parameter(self, small_tsunami_factory):
        problem = small_tsunami_factory.problem_for_level(0)
        theta = np.array([12.0, -7.0])
        np.testing.assert_allclose(problem.qoi(theta), theta)

    def test_subsampling_and_cost_scaling(self, small_tsunami_factory):
        assert small_tsunami_factory.subsampling_rate_for_level(1) == 2
        cost0 = small_tsunami_factory.problem_for_level(0).evaluation_cost()
        cost1 = small_tsunami_factory.problem_for_level(1).evaluation_cost()
        assert cost1 == pytest.approx(cost0 * 4.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            TsunamiInverseProblemFactory(
                level_specs=(TsunamiLevelSpec(0, 8, "constant", False, 0.15, 2.5),),
                subsampling_rates=[0, 5],
                end_time=300.0,
            )

    def test_mini_mlmcmc_inversion_is_in_the_ocean(self, small_tsunami_factory):
        result = MLMCMCSampler(
            small_tsunami_factory, num_samples=[40, 15], burnin=[5, 2], seed=8
        ).run()
        estimate = result.mean
        assert estimate.shape == (2,)
        # the posterior mean stays within the prior box and not absurdly far
        # from the true source at the origin (the posterior is wide)
        assert np.all(np.abs(estimate) < 120.0)
        assert len(result.corrections[1]) == 15
