"""Tests for the adaptive (pilot + production) MLMCMC sample allocation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import AdaptiveMLMCMCSampler
from repro.models.gaussian import GaussianHierarchyFactory


@pytest.fixture(scope="module")
def factory():
    return GaussianHierarchyFactory(dim=1, num_levels=3, decay=0.4, subsampling=4)


class TestAdaptiveMLMCMC:
    def test_pilot_produces_sensible_allocation(self, factory):
        sampler = AdaptiveMLMCMCSampler(
            factory, target_standard_error=0.05, pilot_samples=60, seed=3
        )
        allocation = sampler.pilot()
        assert len(allocation.num_samples) == 3
        # allocation at least as large as the pilot and coarsest level gets the most
        assert all(n >= 20 for n in allocation.num_samples)
        assert allocation.num_samples[0] >= allocation.num_samples[2]
        assert np.all(allocation.costs > 0)
        assert np.all(allocation.iacts >= 1.0)
        summary = allocation.summary()
        assert len(summary) == 3 and summary[0]["allocated_samples"] == allocation.num_samples[0]

    def test_tighter_tolerance_allocates_more_samples(self, factory):
        loose = AdaptiveMLMCMCSampler(
            factory, target_standard_error=0.2, pilot_samples=60, seed=5
        ).pilot()
        tight = AdaptiveMLMCMCSampler(
            factory, target_standard_error=0.02, pilot_samples=60, seed=5
        ).pilot()
        assert sum(tight.num_samples) > sum(loose.num_samples)

    def test_max_samples_cap(self, factory):
        allocation = AdaptiveMLMCMCSampler(
            factory,
            target_standard_error=1e-4,
            pilot_samples=40,
            max_samples_per_level=500,
            seed=1,
        ).pilot()
        assert max(allocation.num_samples) <= 500

    def test_full_run_improves_on_pilot(self, factory):
        sampler = AdaptiveMLMCMCSampler(
            factory, target_standard_error=0.08, pilot_samples=40,
            max_samples_per_level=4000, seed=7,
        )
        result = sampler.run()
        exact = factory.exact_mean()
        production_error = abs(float(result.mean[0] - exact[0]))
        # loose sanity bound: a few standard errors of the requested tolerance
        assert production_error < 0.5
        assert result.production.estimate.num_levels == 3
        # the production run used the allocation computed by the pilot
        assert [
            len(c) for c in result.production.corrections
        ] == result.allocation.num_samples

    def test_validation(self, factory):
        with pytest.raises(ValueError):
            AdaptiveMLMCMCSampler(factory, target_standard_error=0.0)
        with pytest.raises(ValueError):
            AdaptiveMLMCMCSampler(factory, target_standard_error=0.1, pilot_samples=[10, 10])
