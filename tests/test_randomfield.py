"""Tests for the Gaussian random field substrate (covariances, KL, circulant embedding)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.randomfield.circulant import CirculantEmbeddingSampler
from repro.randomfield.covariance import (
    ExponentialCovariance,
    GaussianCovariance,
    MaternCovariance,
    SeparableExponentialCovariance,
)
from repro.randomfield.field import GaussianRandomField
from repro.randomfield.kl import KarhunenLoeveExpansion


class TestCovarianceKernels:
    @pytest.mark.parametrize(
        "kernel",
        [
            ExponentialCovariance(1.0, 0.15),
            GaussianCovariance(2.0, 0.3),
            MaternCovariance(1.5, 0.2, nu=1.5),
            SeparableExponentialCovariance(1.0, 0.25),
        ],
    )
    def test_variance_at_zero_lag(self, kernel):
        value = kernel.evaluate_lag(np.zeros((1, 2)))
        assert value[0] == pytest.approx(kernel.variance, rel=1e-8)

    @pytest.mark.parametrize(
        "kernel",
        [
            ExponentialCovariance(1.0, 0.15),
            GaussianCovariance(1.0, 0.3),
            MaternCovariance(1.0, 0.2, nu=2.5),
            SeparableExponentialCovariance(1.0, 0.25),
        ],
    )
    def test_decay_with_distance(self, kernel):
        near = kernel.evaluate_lag(np.array([[0.05, 0.0]]))[0]
        far = kernel.evaluate_lag(np.array([[0.5, 0.0]]))[0]
        assert near > far > 0

    def test_matrix_is_symmetric_psd(self, rng):
        kernel = ExponentialCovariance(1.0, 0.15)
        points = rng.random((30, 2))
        cov = kernel.matrix(points)
        np.testing.assert_allclose(cov, cov.T, atol=1e-12)
        eigvals = np.linalg.eigvalsh(cov)
        assert eigvals.min() > -1e-10

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            ExponentialCovariance(-1.0, 0.1)
        with pytest.raises(ValueError):
            ExponentialCovariance(1.0, 0.0)
        with pytest.raises(ValueError):
            MaternCovariance(1.0, 0.1, nu=0.0)

    def test_matern_half_equals_exponential(self):
        matern = MaternCovariance(1.0, 0.2, nu=0.5)
        exponential = ExponentialCovariance(1.0, 0.2)
        lags = np.linspace(0.01, 1.0, 20)[:, None] * np.array([[1.0, 0.0]])
        np.testing.assert_allclose(
            matern.evaluate_lag(lags), exponential.evaluate_lag(lags), rtol=1e-6
        )

    def test_separable_exponential_analytic_kl(self):
        kernel = SeparableExponentialCovariance(1.0, 0.3)
        eigvals, freqs = kernel.kl_eigen_1d(num_modes=10)
        assert eigvals.shape == (10,)
        assert np.all(np.diff(eigvals) <= 1e-12)  # sorted decreasingly
        assert np.all(eigvals > 0)
        # eigenvalue formula consistency
        np.testing.assert_allclose(
            eigvals, 2.0 * (1 / 0.3) / (freqs**2 + (1 / 0.3) ** 2), rtol=1e-8
        )

    @given(st.floats(0.05, 2.0), st.floats(0.05, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_property_cauchy_schwarz(self, variance, length):
        kernel = ExponentialCovariance(variance, length)
        lag = np.array([[0.3, -0.2]])
        assert abs(kernel.evaluate_lag(lag)[0]) <= kernel.variance + 1e-12


class TestKarhunenLoeve:
    @pytest.fixture(scope="class")
    def kl(self):
        return KarhunenLoeveExpansion(
            ExponentialCovariance(1.0, 0.3), num_modes=25, quadrature_points_per_dim=14
        )

    def test_eigenvalues_positive_decreasing(self, kl):
        eigvals = kl.eigenvalues
        assert np.all(eigvals >= 0)
        assert np.all(np.diff(eigvals) <= 1e-12)

    def test_energy_fraction_in_unit_interval(self, kl):
        assert 0.0 < kl.energy_fraction() <= 1.0

    def test_more_modes_capture_more_energy(self):
        kernel = ExponentialCovariance(1.0, 0.3)
        few = KarhunenLoeveExpansion(kernel, num_modes=5, quadrature_points_per_dim=14)
        many = KarhunenLoeveExpansion(kernel, num_modes=40, quadrature_points_per_dim=14)
        assert many.energy_fraction() > few.energy_fraction()

    def test_truncated_covariance_bounded_by_kernel(self, kl, rng):
        points = rng.random((15, 2))
        truncated = kl.covariance_of_truncation(points)
        exact_diag = np.full(15, 1.0)
        assert np.all(np.diag(truncated) <= exact_diag + 0.05)

    def test_sample_field_statistics(self, kl, rng):
        points = np.array([[0.5, 0.5], [0.25, 0.75]])
        samples = np.stack([kl.sample_field(points, rng) for _ in range(3000)])
        np.testing.assert_allclose(samples.mean(axis=0), 0.0, atol=0.1)
        truncated_var = np.diag(kl.covariance_of_truncation(points))
        np.testing.assert_allclose(samples.var(axis=0), truncated_var, rtol=0.15)

    def test_evaluate_linear_in_coefficients(self, kl, rng):
        points = rng.random((6, 2))
        theta_a = rng.standard_normal(kl.num_modes)
        theta_b = rng.standard_normal(kl.num_modes)
        combined = kl.evaluate(points, theta_a + theta_b)
        separate = kl.evaluate(points, theta_a) + kl.evaluate(points, theta_b)
        np.testing.assert_allclose(combined, separate, rtol=1e-9, atol=1e-9)

    def test_wrong_coefficient_dimension(self, kl):
        with pytest.raises(ValueError):
            kl.evaluate(np.array([[0.5, 0.5]]), np.zeros(kl.num_modes + 1))

    def test_too_coarse_quadrature_rejected(self):
        with pytest.raises(ValueError):
            KarhunenLoeveExpansion(
                ExponentialCovariance(1.0, 0.3), num_modes=200, quadrature_points_per_dim=5
            )


class TestCirculantEmbedding:
    def test_sample_shape(self, rng):
        sampler = CirculantEmbeddingSampler(ExponentialCovariance(1.0, 0.2), (17, 9))
        assert sampler.sample(rng).shape == (17, 9)

    def test_variance_matches_kernel(self, rng):
        sampler = CirculantEmbeddingSampler(ExponentialCovariance(1.0, 0.15), (16, 16))
        samples = np.stack([sampler.sample(rng) for _ in range(400)])
        assert samples.var() == pytest.approx(1.0, rel=0.15)
        assert abs(samples.mean()) < 0.05

    def test_correlation_decay(self, rng):
        sampler = CirculantEmbeddingSampler(ExponentialCovariance(1.0, 0.1), (32, 32))
        samples = np.stack([sampler.sample(rng) for _ in range(600)])
        # correlation of neighbouring points should exceed distant points
        corr_near = np.corrcoef(samples[:, 0, 0], samples[:, 1, 0])[0, 1]
        corr_far = np.corrcoef(samples[:, 0, 0], samples[:, 20, 0])[0, 1]
        assert corr_near > corr_far

    def test_1d_sampler(self, rng):
        sampler = CirculantEmbeddingSampler(
            ExponentialCovariance(1.0, 0.2), (64,), domain=((0.0, 1.0),)
        )
        sample = sampler.sample(rng)
        assert sample.shape == (64,)

    def test_sample_pair_independent(self, rng):
        sampler = CirculantEmbeddingSampler(ExponentialCovariance(1.0, 0.2), (16, 16))
        a, b = sampler.sample_pair(rng)
        assert a.shape == b.shape == (16, 16)
        assert abs(np.corrcoef(a.ravel(), b.ravel())[0, 1]) < 0.2

    def test_grid_points(self):
        sampler = CirculantEmbeddingSampler(ExponentialCovariance(1.0, 0.2), (4, 3))
        points = sampler.grid_points()
        assert points.shape == (12, 2)
        assert points.min() >= 0.0 and points.max() <= 1.0

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            CirculantEmbeddingSampler(ExponentialCovariance(1.0, 0.2), (1,))
        with pytest.raises(ValueError):
            CirculantEmbeddingSampler(ExponentialCovariance(1.0, 0.2), (4, 4, 4))


class TestGaussianRandomField:
    @pytest.fixture(scope="class")
    def field(self):
        return GaussianRandomField(num_modes=20, quadrature_points_per_dim=12)

    def test_log_transform(self, field, rng):
        theta = field.sample_coefficients(rng)
        points = rng.random((5, 2))
        log_values = field.evaluate_log(points, theta)
        values = field.evaluate(points, theta)
        np.testing.assert_allclose(values, np.exp(log_values))
        assert np.all(values > 0)

    def test_grid_evaluation_shape(self, field, rng):
        theta = field.sample_coefficients(rng)
        grid = field.evaluate_on_grid(theta, resolution=8)
        assert grid.shape == (9, 9)
        log_grid = field.evaluate_on_grid(theta, resolution=8, log=True)
        np.testing.assert_allclose(np.exp(log_grid), grid)

    def test_without_log_transform(self, rng):
        field = GaussianRandomField(
            num_modes=10, log_transform=False, quadrature_points_per_dim=10
        )
        theta = field.sample_coefficients(rng)
        values = field.evaluate(np.array([[0.5, 0.5]]), theta)
        log_values = field.evaluate_log(np.array([[0.5, 0.5]]), theta)
        np.testing.assert_allclose(values, log_values)
