"""Tests for the experiment subsystem: specs, registry, runner, manifests, CLI."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments import (
    ExperimentSpec,
    ManifestError,
    UnknownScenarioError,
    all_scenarios,
    build_manifest,
    get_driver,
    get_scenario,
    run_scenario,
    scenario_names,
    spec_hash,
    validate_manifest,
)
from repro.experiments.presets import resolve_problem_options

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_DIR = REPO_ROOT / "benchmarks"

#: every benchmark module must be backed by a registry scenario
BENCH_MODULE_TO_SCENARIO = {
    "bench_ablation_load_balancing": "ablation-load-balancing",
    "bench_ablation_subsampling": "ablation-subsampling",
    "bench_adaptive_allocation": "poisson-adaptive",
    "bench_cost_complexity": "cost-complexity",
    "bench_evaluator_cache": "evaluator-cache",
    "bench_fem_hotpath": "fem-hotpath",
    "bench_fig02_random_field": "fig02-random-field",
    "bench_fig04_05_buoy_series": "fig04-05-buoy-series",
    "bench_fig09_load_balancing": "fig09-load-balancing",
    "bench_fig10_poisson_field_recovery": "fig10-poisson-field-recovery",
    "bench_fig11_strong_scaling": "fig11-strong-scaling",
    "bench_fig12_weak_scaling": "fig12-weak-scaling",
    "bench_fig13_tsunami_posterior": "fig13-tsunami-posterior",
    "bench_fig14_level_corrections": "fig14-level-corrections",
    "bench_mp_speedup": "poisson-parallel",
    "bench_net_overhead": "poisson-parallel",
    "bench_swe_hotpath": "swe-hotpath",
    "bench_table1_tsunami_likelihood": "table1-tsunami-likelihood",
    "bench_table2_tsunami_levels": "table2-tsunami-levels",
    "bench_table3_poisson_multilevel": "table3-poisson-multilevel",
    "bench_table4_tsunami_multilevel": "table4-tsunami-multilevel",
}

EXAMPLE_SCENARIOS = [
    "example-quickstart",
    "example-poisson-inversion",
    "example-tsunami-inversion",
    "example-scaling-study",
    "example-load-balancing",
]


def _cli(*args: str, cwd: Path | None = None) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=cwd or REPO_ROOT,
    )


# ----------------------------------------------------------------------------
# ExperimentSpec
class TestExperimentSpec:
    def test_round_trip_through_dict(self):
        spec = get_scenario("table3-poisson-multilevel")
        rebuilt = ExperimentSpec.from_dict(spec.as_dict())
        assert rebuilt == spec
        assert rebuilt.as_dict() == spec.as_dict()

    def test_hash_is_content_based_and_stable(self):
        spec = get_scenario("example-quickstart")
        assert spec.hash() == ExperimentSpec.from_dict(spec.as_dict()).hash()
        assert spec.hash() != get_scenario("example-poisson-inversion").hash()
        # resolving run-time overrides changes the identity
        assert spec.resolved(quick=True).hash() != spec.resolved().hash()
        assert spec.resolved(backend="pool").hash() != spec.resolved().hash()
        assert spec.resolved(seed=123).hash() != spec.resolved().hash()

    def test_quick_resolution_merges_overrides(self):
        spec = get_scenario("table3-poisson-multilevel")
        quick = spec.resolved(quick=True)
        assert quick.sampler["num_samples"] == [24, 12, 6]
        # non-overridden keys survive the merge
        assert quick.sampler["burnin_floor"] == spec.sampler["burnin_floor"]
        assert quick.quick == {}

    def test_backend_and_seed_overrides(self):
        spec = get_scenario("example-quickstart").resolved(backend="caching", seed=7)
        assert spec.evaluation == {"backend": "caching"}
        assert spec.seed == 7

    def test_backend_override_keeps_options_only_for_same_backend(self):
        spec = ExperimentSpec(
            name="x", driver="sequential",
            evaluation={"backend": "caching", "options": {"cache_size": 128}},
        )
        same = spec.resolved(backend="caching")
        assert same.evaluation == {"backend": "caching", "options": {"cache_size": 128}}
        # options are backend-specific; switching backends drops them
        other = spec.resolved(backend="pool")
        assert other.evaluation == {"backend": "pool"}


# ----------------------------------------------------------------------------
# registry
class TestRegistry:
    def test_at_least_20_scenarios(self):
        assert len(scenario_names()) >= 20

    def test_every_benchmark_module_has_a_scenario(self):
        modules = sorted(
            path.stem for path in BENCH_DIR.glob("bench_*.py")
        )
        assert modules == sorted(BENCH_MODULE_TO_SCENARIO), (
            "benchmark modules and the completeness map diverged"
        )
        names = set(scenario_names())
        missing = {
            module: scenario
            for module, scenario in BENCH_MODULE_TO_SCENARIO.items()
            if scenario not in names
        }
        assert not missing

    def test_every_example_has_a_scenario(self):
        names = set(scenario_names())
        assert set(EXAMPLE_SCENARIOS) <= names

    def test_every_scenario_has_driver_quick_tier_and_metadata(self):
        for spec in all_scenarios():
            get_driver(spec.driver)  # raises on unknown driver
            assert spec.description, spec.name
            assert spec.quick, f"{spec.name} lacks a --quick tier"
            # problem presets must resolve
            resolve_problem_options(spec.application, spec.problem)

    def test_unknown_scenario_raises(self):
        with pytest.raises(UnknownScenarioError):
            get_scenario("no-such-scenario")


# ----------------------------------------------------------------------------
# runner + manifest
class TestRunnerAndManifest:
    def test_quick_run_writes_schema_valid_manifest(self, tmp_path):
        run = run_scenario("example-quickstart", quick=True, out_dir=tmp_path)
        assert run.manifest_path is not None and run.manifest_path.exists()
        on_disk = json.loads(run.manifest_path.read_text())
        validate_manifest(on_disk)
        assert on_disk["scenario"] == "example-quickstart"
        assert on_disk["quick"] is True
        assert on_disk["spec_hash"] == spec_hash(on_disk["spec"])
        # per-level evaluation accounting made it into the manifest
        assert [e["level"] for e in on_disk["evaluations"]] == [0, 1, 2]
        assert all(e["log_density_evaluations"] > 0 for e in on_disk["evaluations"])
        # the workload environment is part of the run's identity
        from repro.experiments.presets import paper_scale, sample_scale

        assert on_disk["environment"] == {
            "bench_scale": sample_scale(),
            "paper_scale": paper_scale(),
        }
        # and the payload carries the estimates
        assert len(on_disk["results"]["sequential"]["mean"]) == 2

    def test_spec_round_trip_parse_run_manifest(self, tmp_path):
        spec = ExperimentSpec.from_dict(
            get_scenario("ablation-subsampling").resolved(quick=True).as_dict()
        )
        run = run_scenario(spec, out_dir=tmp_path)
        assert run.manifest["spec"] == spec.as_dict()
        assert run.manifest["spec_hash"] == spec.hash()
        rows = run.payload["rows"]
        assert [row["rho"] for row in rows] == [1, 4]

    def test_backend_override_is_recorded_and_used(self):
        run = run_scenario("example-quickstart", quick=True, backend="caching")
        assert run.manifest["backend"] == "caching"
        assert run.spec.evaluation == {"backend": "caching"}
        # the caching backend records hits during a multilevel run
        assert sum(e["cache_hits"] for e in run.manifest["evaluations"]) > 0

    def test_backend_override_rejected_for_backend_agnostic_drivers(self):
        # these drivers never route work through a spec-selected backend, so a
        # backend override would be recorded in the manifest but never used
        for name in ("fem-hotpath", "evaluator-cache", "table1-tsunami-likelihood"):
            with pytest.raises(ValueError, match="backend"):
                run_scenario(name, quick=True, backend="pool")

    def test_dual_run_drivers_account_all_evaluations(self):
        run = run_scenario("example-quickstart", quick=True)
        seq = run.raw["sequential"].evaluation_stats
        par = run.raw["parallel"].evaluation_stats
        for entry in run.manifest["evaluations"]:
            level = entry["level"]
            assert entry["log_density_evaluations"] == (
                seq[level].log_density_evaluations + par[level].log_density_evaluations
            )

    def test_validate_rejects_tampered_manifest(self):
        spec = get_scenario("example-quickstart").resolved(quick=True)
        manifest = build_manifest(spec, results={"ok": 1}, wall_time_s=0.1)
        validate_manifest(manifest)
        bad = dict(manifest)
        bad["spec"] = {**manifest["spec"], "seed": 999}
        with pytest.raises(ManifestError, match="spec_hash"):
            validate_manifest(bad)
        with pytest.raises(ManifestError, match="missing field"):
            validate_manifest({"schema_version": 1})


# ----------------------------------------------------------------------------
# CLI
class TestCLI:
    def test_run_list_exits_zero_and_lists_everything(self):
        result = _cli("run", "--list")
        assert result.returncode == 0
        for name in scenario_names():
            assert name in result.stdout

    def test_unknown_scenario_exits_2_with_message(self):
        result = _cli("run", "no-such-scenario")
        assert result.returncode == 2
        assert "unknown scenario" in result.stderr

    def test_missing_scenario_name_exits_2(self):
        result = _cli("run")
        assert result.returncode == 2

    def test_run_quick_writes_manifest_and_validate_accepts_it(self, tmp_path):
        result = _cli(
            "run", "fig02-random-field", "--quick", "--out", str(tmp_path)
        )
        assert result.returncode == 0, result.stderr
        manifest_path = tmp_path / "fig02-random-field.manifest.json"
        assert manifest_path.exists()
        assert "manifest written to" in result.stdout

        check = _cli("validate", str(manifest_path))
        assert check.returncode == 0, check.stderr
        assert "ok" in check.stdout

    def test_backend_override_on_agnostic_scenario_exits_2(self):
        result = _cli("run", "fem-hotpath", "--quick", "--backend", "pool")
        assert result.returncode == 2
        assert "backend" in result.stderr

    def test_validate_rejects_corrupt_manifest(self, tmp_path):
        bad = tmp_path / "bad.manifest.json"
        bad.write_text(json.dumps({"schema_version": 1}))
        result = _cli("validate", str(bad))
        assert result.returncode == 1
        assert "INVALID" in result.stderr
