"""Tests for MH and multilevel kernels, chains, sample collections."""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.core.chain import SingleChainMCMC, SubsampledChainSource
from repro.core.interpolation import BlockInterpolation, IdentityInterpolation
from repro.core.kernels import MHKernel, MultilevelKernel
from repro.core.problem import DensitySamplingProblem, GaussianTargetProblem
from repro.core.proposals import (
    BufferedChainSource,
    GaussianRandomWalkProposal,
    IndependenceProposal,
    SubsamplingProposal,
)
from repro.bayes.distributions import GaussianDensity
from repro.core.sample_collection import CorrectionCollection, SampleCollection
from repro.core.state import SamplingState


class TestMHKernel:
    def test_samples_standard_normal(self):
        problem = GaussianTargetProblem(np.zeros(1), 1.0)
        kernel = MHKernel(problem, GaussianRandomWalkProposal(2.0, dim=1))
        rng = np.random.default_rng(0)
        state = kernel.initialize(np.zeros(1))
        samples = []
        for _ in range(20_000):
            result = kernel.step(state, rng)
            state = result.state
            samples.append(state.parameters[0])
        samples = np.array(samples[2000:])
        assert samples.mean() == pytest.approx(0.0, abs=0.08)
        assert samples.std() == pytest.approx(1.0, rel=0.08)
        # Kolmogorov-Smirnov sanity check on thinned samples
        ks = stats.kstest(samples[::20], "norm")
        assert ks.pvalue > 0.001
        assert 0.2 < kernel.acceptance_rate < 0.9

    def test_rejects_minus_infinity_proposals(self):
        def log_density(theta):
            return 0.0 if np.all(theta >= 0) else -np.inf

        problem = DensitySamplingProblem(1, log_density)
        kernel = MHKernel(problem, GaussianRandomWalkProposal(4.0, dim=1))
        rng = np.random.default_rng(1)
        state = kernel.initialize(np.array([0.5]))
        for _ in range(200):
            state = kernel.step(state, rng).state
            assert state.parameters[0] >= 0

    def test_initialize_evaluates_density(self):
        problem = GaussianTargetProblem(np.zeros(2), 1.0)
        kernel = MHKernel(problem, GaussianRandomWalkProposal(1.0, dim=2))
        state = kernel.initialize(np.ones(2))
        assert state.log_density is not None

    def test_independence_sampler_on_same_density_always_accepts(self):
        target = GaussianDensity(np.zeros(2), 1.0)
        problem = GaussianTargetProblem(np.zeros(2), 1.0)
        kernel = MHKernel(problem, IndependenceProposal(target))
        rng = np.random.default_rng(3)
        state = kernel.initialize(np.zeros(2))
        for _ in range(200):
            state = kernel.step(state, rng).state
        assert kernel.acceptance_rate == pytest.approx(1.0)


class TestMultilevelKernel:
    def _make_kernel(self, coarse_mean, fine_mean, buffered):
        coarse = GaussianTargetProblem(np.array(coarse_mean), 1.0)
        fine = GaussianTargetProblem(np.array(fine_mean), 1.0)
        return MultilevelKernel(
            fine_problem=fine,
            coarse_problem=coarse,
            coarse_proposal=SubsamplingProposal(buffered),
            fine_proposal=None,
            interpolation=IdentityInterpolation(),
        )

    def test_identical_levels_accept_everything(self):
        # When nu_l == nu_{l-1}, the acceptance probability is exactly 1.
        rng = np.random.default_rng(0)
        buffered = BufferedChainSource()
        kernel = self._make_kernel([0.0], [0.0], buffered)
        state = kernel.initialize(np.zeros(1))
        for _ in range(100):
            coarse = SamplingState(parameters=rng.standard_normal(1))
            kernel.coarse_problem.log_density(coarse)
            buffered.push(coarse)
            result = kernel.step(state, rng)
            state = result.state
            assert result.accepted
            assert result.log_alpha == pytest.approx(0.0, abs=1e-12)

    def test_targets_fine_posterior_with_exact_coarse_proposals(self):
        # Coarse proposals drawn exactly from nu_{l-1}: the fine chain is an
        # independence sampler and must reproduce the fine posterior moments.
        rng = np.random.default_rng(7)
        buffered = BufferedChainSource()
        kernel = self._make_kernel([0.0], [0.6], buffered)
        coarse_density = GaussianDensity(np.zeros(1), 1.0)
        state = kernel.initialize(np.zeros(1))
        samples = []
        for _ in range(20_000):
            coarse = SamplingState(parameters=coarse_density.sample(rng))
            kernel.coarse_problem.log_density(coarse)
            buffered.push(coarse)
            state = kernel.step(state, rng).state
            samples.append(state.parameters[0])
        samples = np.array(samples[2000:])
        assert samples.mean() == pytest.approx(0.6, abs=0.06)
        assert samples.var() == pytest.approx(1.0, rel=0.1)

    def test_metadata_carries_coarse_pairing(self):
        rng = np.random.default_rng(2)
        buffered = BufferedChainSource()
        kernel = self._make_kernel([0.0, 0.0], [0.5, 0.5], buffered)
        state = kernel.initialize(np.zeros(2))
        coarse = SamplingState(parameters=np.array([1.0, 2.0]))
        kernel.coarse_problem.log_density(coarse)
        buffered.push(coarse)
        result = kernel.step(state, rng)
        np.testing.assert_allclose(result.metadata["coarse_qoi"], [1.0, 2.0])
        assert result.metadata["coarse_state"] is coarse
        assert np.isfinite(result.metadata["coarse_log_density"])

    def test_block_interpolation_with_fine_proposal(self):
        rng = np.random.default_rng(5)
        coarse = GaussianTargetProblem(np.zeros(1), 1.0)
        fine = GaussianTargetProblem(np.zeros(2), 1.0)
        buffered = BufferedChainSource()
        kernel = MultilevelKernel(
            fine_problem=fine,
            coarse_problem=coarse,
            coarse_proposal=SubsamplingProposal(buffered),
            fine_proposal=GaussianRandomWalkProposal(0.5, dim=1),
            interpolation=BlockInterpolation(coarse_dim=1, fine_dim=1),
        )
        state = kernel.initialize(np.zeros(2))
        for _ in range(50):
            coarse_state = SamplingState(parameters=rng.standard_normal(1))
            coarse.log_density(coarse_state)
            buffered.push(coarse_state)
            state = kernel.step(state, rng).state
            assert state.dim == 2


class TestInterpolation:
    def test_identity(self):
        interp = IdentityInterpolation()
        np.testing.assert_allclose(interp.interpolate(np.array([1.0, 2.0]), None), [1.0, 2.0])
        np.testing.assert_allclose(interp.coarse_part(np.array([3.0])), [3.0])
        assert interp.fine_part(np.array([3.0])).size == 0

    def test_block(self):
        interp = BlockInterpolation(2, 1)
        combined = interp.interpolate(np.array([1.0, 2.0]), np.array([3.0]))
        np.testing.assert_allclose(combined, [1.0, 2.0, 3.0])
        np.testing.assert_allclose(interp.coarse_part(combined), [1.0, 2.0])
        np.testing.assert_allclose(interp.fine_part(combined), [3.0])
        with pytest.raises(ValueError):
            interp.interpolate(np.array([1.0]), np.array([3.0]))
        with pytest.raises(ValueError):
            interp.interpolate(np.array([1.0, 2.0]), None)


class TestSampleCollection:
    def test_weighted_statistics(self):
        collection = SampleCollection()
        collection.add(SamplingState(parameters=np.array([1.0, 0.0])))
        collection.add(SamplingState(parameters=np.array([3.0, 2.0]), weight=3), weight=3)
        assert collection.num_samples == 4
        assert collection.num_unique == 2
        np.testing.assert_allclose(collection.mean(), [2.5, 1.5])

    def test_qoi_matrix_requires_evaluation(self):
        collection = SampleCollection()
        collection.add(SamplingState(parameters=np.zeros(1)))
        with pytest.raises(ValueError):
            collection.qois()

    def test_merge_and_subset(self):
        a = SampleCollection()
        b = SampleCollection()
        a.add(SamplingState(parameters=np.array([1.0])))
        b.add(SamplingState(parameters=np.array([2.0])))
        a.merge(b)
        assert a.num_samples == 2
        assert a.subset(1).num_samples == 1

    def test_ess_of_repeated_samples_is_low(self, rng):
        collection = SampleCollection()
        value = SamplingState(parameters=np.array([1.0]))
        for _ in range(50):
            collection.add(value.copy())
        iid = SampleCollection()
        for _ in range(50):
            iid.add(SamplingState(parameters=rng.standard_normal(1)))
        assert collection.ess() <= iid.ess() + 1e-9


class TestCorrectionCollection:
    def test_level0_plain_mean(self):
        collection = CorrectionCollection(level=0)
        collection.add(np.array([1.0]))
        collection.add(np.array([3.0]))
        np.testing.assert_allclose(collection.mean(), [2.0])
        assert not collection.has_coarse

    def test_correction_differences(self):
        collection = CorrectionCollection(level=1)
        collection.add(np.array([2.0]), np.array([1.5]))
        collection.add(np.array([1.0]), np.array([0.0]))
        np.testing.assert_allclose(collection.differences(), [[0.5], [1.0]])
        np.testing.assert_allclose(collection.mean(), [0.75])
        assert collection.variance()[0] == pytest.approx(np.var([0.5, 1.0], ddof=1))
        fine, coarse = collection.pair(0)
        np.testing.assert_allclose(fine, [2.0])
        np.testing.assert_allclose(coarse, [1.5])

    def test_missing_coarse_rejected_above_level0(self):
        collection = CorrectionCollection(level=1)
        with pytest.raises(ValueError):
            collection.add(np.array([1.0]))

    def test_merge_level_mismatch(self):
        with pytest.raises(ValueError):
            CorrectionCollection(0).merge(CorrectionCollection(1))


class TestSingleChain:
    def test_burnin_excluded_from_samples(self):
        problem = GaussianTargetProblem(np.zeros(1), 1.0)
        kernel = MHKernel(problem, GaussianRandomWalkProposal(1.0, dim=1))
        chain = SingleChainMCMC(kernel, np.zeros(1), np.random.default_rng(0), burnin=50)
        chain.run(100)
        assert chain.samples.num_samples == 100
        assert chain.steps_taken == 150
        assert not chain.in_burnin

    def test_run_steps(self):
        problem = GaussianTargetProblem(np.zeros(1), 1.0)
        kernel = MHKernel(problem, GaussianRandomWalkProposal(1.0, dim=1))
        chain = SingleChainMCMC(kernel, np.zeros(1), np.random.default_rng(0), burnin=10)
        chain.run_steps(30)
        assert chain.steps_taken == 30
        assert chain.samples.num_samples == 20

    def test_level0_corrections_are_plain_qois(self):
        problem = GaussianTargetProblem(np.ones(2), 1.0)
        kernel = MHKernel(problem, GaussianRandomWalkProposal(1.0, dim=2))
        chain = SingleChainMCMC(kernel, np.zeros(2), np.random.default_rng(0), burnin=5, level=0)
        chain.run(50)
        assert len(chain.corrections) == 50
        assert not chain.corrections.has_coarse

    def test_subsampled_chain_source_advances_underlying_chain(self):
        problem = GaussianTargetProblem(np.zeros(1), 1.0)
        kernel = MHKernel(problem, GaussianRandomWalkProposal(1.0, dim=1))
        chain = SingleChainMCMC(kernel, np.zeros(1), np.random.default_rng(0), burnin=0)
        source = SubsampledChainSource(chain, subsampling_rate=7)
        sample = source.next_sample()
        assert chain.steps_taken == 7
        assert sample.qoi is not None
        source.next_sample()
        assert chain.steps_taken == 14

    def test_acceptance_rate_reported(self):
        problem = GaussianTargetProblem(np.zeros(1), 1.0)
        kernel = MHKernel(problem, GaussianRandomWalkProposal(0.5, dim=1))
        chain = SingleChainMCMC(kernel, np.zeros(1), np.random.default_rng(0), burnin=0)
        chain.run(200)
        assert 0.0 < chain.acceptance_rate <= 1.0
