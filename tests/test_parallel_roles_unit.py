"""Unit-level tests for the parallel role protocol (phonebook matchmaking, collectors, workers).

These tests exercise individual roles against small scripted counterparts
rather than the full machine, so protocol regressions (lost requests, wrong
routing after reassignments, double-served fetches) are caught close to their
source.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.sample_collection import CorrectionCollection
from repro.models.gaussian import GaussianHierarchyFactory
from repro.parallel.costmodel import ConstantCostModel
from repro.parallel.layout import ProcessLayout
from repro.parallel.roles import (
    CollectorProcess,
    PhonebookProcess,
    RunConfiguration,
    Tags,
    WorkerProcess,
)
from repro.parallel.roles.protocol import SharedProblemCache
from repro.parallel.simmpi import RankProcess, VirtualWorld


def make_config(num_ranks: int = 10, dynamic: bool = True) -> RunConfiguration:
    factory = GaussianHierarchyFactory(dim=1, num_levels=2, subsampling=2)
    layout = ProcessLayout.create(num_ranks=num_ranks, num_levels=2)
    return RunConfiguration(
        factory=factory,
        layout=layout,
        cost_model=ConstantCostModel([0.01, 0.05]),
        num_samples=[20, 10],
        burnin=[2, 2],
        subsampling_rates=[0, 2],
        dynamic_load_balancing=dynamic,
    )


class Script(RankProcess):
    """A scripted rank that sends predefined messages, then listens."""

    role = "script"

    def __init__(self, rank, actions, listen_tags=(), listen_count=0):
        super().__init__(rank)
        self.actions = actions
        self.listen_tags = listen_tags
        self.listen_count = listen_count
        self.received = []

    def run(self):
        for dest, tag, payload in self.actions:
            yield self.send(dest, tag, payload)
        for _ in range(self.listen_count):
            msg = yield self.recv(*self.listen_tags)
            self.received.append(msg)


class TestRunConfiguration:
    def test_publish_rates(self):
        config = make_config()
        assert config.publish_rate(0) == 2  # level 0 publishes at rho_1
        assert config.publish_rate(1) == 0  # finest level never publishes
        assert config.num_levels == 2 and config.finest_level == 1

    def test_validation(self):
        factory = GaussianHierarchyFactory(dim=1, num_levels=2)
        layout = ProcessLayout.create(num_ranks=10, num_levels=2)
        with pytest.raises(ValueError):
            RunConfiguration(
                factory=factory, layout=layout, cost_model=ConstantCostModel([1.0, 1.0]),
                num_samples=[10], burnin=[1, 1], subsampling_rates=[0, 1],
            )

    def test_shared_problem_cache_constructs_once(self):
        factory = GaussianHierarchyFactory(dim=1, num_levels=2)
        cache = SharedProblemCache(factory)
        index = factory.index_set().finest
        assert cache.problem(index) is cache.problem(index)


class TestPhonebookMatchmaking:
    def test_forwards_request_once_sample_is_ready(self):
        config = make_config()
        world = VirtualWorld(latency=0.01)
        phonebook = PhonebookProcess(1, config)
        # a scripted "controller" registers on level 0, a scripted "requester"
        # asks for a level-0 sample before anything is available, then the
        # controller announces availability; the phonebook must then order the
        # controller (and only then) to serve the requester.
        controller = Script(
            5,
            actions=[
                (1, Tags.REGISTER, {"rank": 5, "level": 0}),
            ],
            listen_tags=(Tags.FETCH_SAMPLE,),
            listen_count=1,
        )
        requester = Script(
            6,
            actions=[(1, Tags.SAMPLE_REQUEST, {"level": 0, "requester": 6})],
        )
        announcer = Script(
            7,
            actions=[(1, Tags.SAMPLE_READY, {"rank": 5, "level": 0, "count": 1, "duration": 0.01})],
        )
        shutdown = Script(8, actions=[(1, Tags.SHUTDOWN, {})])
        for proc in (phonebook, controller, requester, announcer, shutdown):
            world.add_process(proc)
        world.run()
        assert len(controller.received) == 1
        fetch = controller.received[0]
        assert fetch.payload["requester"] == 6
        assert fetch.payload["level"] == 0

    def test_correction_requests_matched_with_count(self):
        config = make_config()
        world = VirtualWorld(latency=0.01)
        phonebook = PhonebookProcess(1, config)
        controller = Script(
            5,
            actions=[
                (1, Tags.REGISTER, {"rank": 5, "level": 1}),
                (1, Tags.CORRECTION_READY, {"rank": 5, "level": 1, "count": 3, "duration": 0.05}),
            ],
            listen_tags=(Tags.FETCH_CORRECTION,),
            listen_count=1,
        )
        collector = Script(
            6,
            actions=[(1, Tags.CORRECTION_REQUEST, {"level": 1, "requester": 6, "count": 5})],
        )
        shutdown = Script(8, actions=[(1, Tags.SHUTDOWN, {})])
        for proc in (phonebook, controller, collector, shutdown):
            world.add_process(proc)
        world.run()
        assert len(controller.received) == 1
        fetch = controller.received[0]
        # only 3 corrections were available, so only 3 may be fetched
        assert fetch.payload["count"] == 3
        assert fetch.payload["requester"] == 6

    def test_level_done_tracking(self):
        config = make_config()
        phonebook = PhonebookProcess(1, config)
        world = VirtualWorld()
        done = Script(5, actions=[(1, Tags.LEVEL_DONE, {"level": 0}), (1, Tags.SHUTDOWN, {})])
        world.add_process(phonebook)
        world.add_process(done)
        world.run()
        assert phonebook._level_done[0] is True
        assert phonebook._level_done[1] is False


class TestCollectorAndWorker:
    def test_collector_accumulates_until_target_and_reports(self):
        config = make_config()
        world = VirtualWorld(latency=0.01)
        collector = CollectorProcess(4, config)

        class FakeRootAndController(RankProcess):
            """Plays both the root (sends COLLECT) and a controller serving CORRECTIONS."""

            def __init__(self, rank):
                super().__init__(rank)
                self.done_payload = None

            def run(self):
                yield self.send(4, Tags.COLLECT, {"level": 1, "target": 7})
                while True:
                    msg = yield self.recv(Tags.CORRECTION_REQUEST, Tags.COLLECTOR_DONE)
                    if msg.tag == Tags.COLLECTOR_DONE:
                        self.done_payload = msg.payload
                        yield self.send(4, Tags.SHUTDOWN, {})
                        return
                    count = msg.payload["count"]
                    pairs = [
                        (np.array([1.0]), np.array([0.5])) for _ in range(min(count, 3))
                    ]
                    yield self.send(4, Tags.CORRECTIONS, {"pairs": pairs, "level": 1})

        # Route collector requests directly back to the fake process by using
        # its rank as the phonebook rank.
        config.layout.phonebook_rank = 9
        config.layout.root_rank = 9
        fake = FakeRootAndController(9)
        world.add_process(collector)
        world.add_process(fake)
        world.run()
        assert fake.done_payload is not None
        collection: CorrectionCollection = fake.done_payload["collection"]
        assert len(collection) == 7
        np.testing.assert_allclose(collection.mean(), [0.5])

    def test_worker_mirrors_evaluations(self):
        world = VirtualWorld()
        worker = WorkerProcess(3, controller_rank=2)

        class FakeController(RankProcess):
            def run(self):
                yield self.send(3, Tags.WORKER_ASSIGN, {"level": 1})
                for _ in range(4):
                    yield self.send(3, Tags.WORKER_EVAL, {"duration": 0.5, "kind": "model_eval", "level": 1})
                yield self.send(3, Tags.WORKER_SHUTDOWN, {})

        world.add_process(worker)
        world.add_process(FakeController(2))
        world.run()
        assert worker.evaluations == 4
        assert worker.level == 1
        assert world.trace.busy_time(3) == pytest.approx(2.0)
