"""Tests for the model-evaluation backend subsystem (:mod:`repro.evaluation`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import DensitySamplingProblem, GaussianTargetProblem, MLMCMCSampler
from repro.evaluation import (
    BatchEvaluator,
    CachingEvaluator,
    EvaluationRecord,
    EvaluatorStats,
    InProcessEvaluator,
    PoolEvaluator,
    make_evaluator,
)
from repro.models.gaussian import GaussianHierarchyFactory


def _quadratic_log_density(theta: np.ndarray) -> float:
    """Module-level target so it can cross process boundaries (pool backend)."""
    return -0.5 * float(np.sum(np.asarray(theta, dtype=float) ** 2))


class TestEvaluatorStats:
    def test_record_and_derived_quantities(self):
        stats = EvaluatorStats()
        stats.record(EvaluationRecord("log_density", wall_time=0.5, cost=2.0))
        stats.record(EvaluationRecord("qoi", wall_time=0.25, cost=1.0))
        stats.record(EvaluationRecord("log_density", 0.0, 0.0, cache_hit=True))
        assert stats.log_density_evaluations == 1
        assert stats.qoi_evaluations == 1
        assert stats.cache_hits == 1
        assert stats.total_evaluations == 2
        assert stats.density_requests == 2
        assert stats.wall_time == pytest.approx(0.75)
        assert stats.cost_units == pytest.approx(3.0)
        assert stats.mean_wall_time_per_evaluation() == pytest.approx(0.375)
        assert 0.0 < stats.hit_rate < 1.0

    def test_batch_record(self):
        stats = EvaluatorStats()
        stats.record(EvaluationRecord("log_density", wall_time=1.0, cost=8.0, batch_size=8))
        assert stats.log_density_evaluations == 8
        assert stats.batch_calls == 1

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            EvaluatorStats().record(EvaluationRecord("solve", 0.0, 0.0))

    def test_snapshot_delta_merge(self):
        stats = EvaluatorStats()
        stats.record(EvaluationRecord("log_density", 0.1, 1.0))
        before = stats.snapshot()
        stats.record(EvaluationRecord("log_density", 0.2, 1.0))
        delta = stats.delta(before)
        assert delta.log_density_evaluations == 1
        assert delta.wall_time == pytest.approx(0.2)
        # snapshot is independent of the live object
        assert before.log_density_evaluations == 1
        merged = EvaluatorStats().merge(stats).merge(stats)
        assert merged.log_density_evaluations == 4
        assert set(stats.as_dict()) >= {"log_density_evaluations", "wall_time", "cost_units"}


class TestInProcessEvaluator:
    def test_counts_and_cost_units(self):
        problem = GaussianTargetProblem(np.zeros(2), 1.0, cost=4.0)
        assert isinstance(problem.evaluator, InProcessEvaluator)
        problem.log_density(np.ones(2))
        problem.log_density(np.ones(2))  # raw arrays are never cached
        problem.qoi(np.ones(2))
        stats = problem.evaluation_stats
        assert stats.log_density_evaluations == 2
        assert problem.num_density_evaluations == 2
        assert stats.qoi_evaluations == 1
        assert stats.cost_units == pytest.approx(3 * 4.0)
        assert stats.wall_time > 0.0

    def test_unbound_evaluator_raises(self):
        with pytest.raises(RuntimeError):
            InProcessEvaluator().log_density(np.zeros(2))

    def test_rebinding_shared_evaluator_rejected(self):
        """An evaluator serves exactly one problem (a shared one would silently
        evaluate the wrong model and poison caches)."""
        shared = InProcessEvaluator()
        GaussianTargetProblem(np.zeros(2), 1.0, evaluator=shared)
        with pytest.raises(RuntimeError, match="already bound"):
            GaussianTargetProblem(np.ones(2), 1.0, evaluator=shared)


class TestCachingEvaluator:
    def test_hit_and_miss_semantics(self):
        problem = GaussianTargetProblem(np.zeros(2), 1.0, evaluator=CachingEvaluator())
        x, y = np.array([1.0, 2.0]), np.array([3.0, 4.0])
        first = problem.log_density(x)
        assert problem.evaluation_stats.cache_misses == 1
        second = problem.log_density(x.copy())  # equal bytes -> hit
        assert first == second
        problem.log_density(y)
        stats = problem.evaluation_stats
        assert stats.log_density_evaluations == 2  # only the misses ran the model
        assert stats.cache_hits == 1
        assert stats.cache_misses == 2
        assert problem.num_density_evaluations == 2

    def test_qoi_cached_and_copy_safe(self):
        problem = GaussianTargetProblem(np.zeros(2), 1.0, evaluator=CachingEvaluator())
        x = np.array([1.0, 2.0])
        qoi = problem.qoi(x)
        qoi[:] = -99.0  # mutate the returned array; the cache must not see it
        np.testing.assert_allclose(problem.qoi(x), [1.0, 2.0])
        assert problem.evaluation_stats.qoi_evaluations == 1
        assert problem.evaluation_stats.qoi_cache_hits == 1
        assert problem.evaluation_stats.cache_hits == 0  # density hits tracked apart

    def test_lru_eviction(self):
        evaluator = CachingEvaluator(max_entries=2)
        problem = GaussianTargetProblem(np.zeros(1), 1.0, evaluator=evaluator)
        a, b, c = np.array([1.0]), np.array([2.0]), np.array([3.0])
        problem.log_density(a)
        problem.log_density(b)
        problem.log_density(a)  # refresh a: b is now least recently used
        problem.log_density(c)  # evicts b
        assert evaluator.cache_size == 2
        problem.log_density(a)  # hit
        problem.log_density(b)  # miss: was evicted
        stats = problem.evaluation_stats
        assert stats.log_density_evaluations == 4  # a, b, c and re-computed b
        assert stats.cache_hits == 2

    def test_batch_uses_cache(self):
        evaluator = CachingEvaluator()
        problem = GaussianTargetProblem(np.zeros(2), 1.0, evaluator=evaluator)
        block = np.array([[1.0, 2.0], [3.0, 4.0], [1.0, 2.0]])
        values = problem.log_density_batch(block)
        assert values[0] == values[2]
        assert problem.evaluation_stats.log_density_evaluations == 2
        again = problem.log_density_batch(block)
        np.testing.assert_array_equal(values, again)
        assert problem.evaluation_stats.log_density_evaluations == 2

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            CachingEvaluator(max_entries=0)


class TestBatchEvaluator:
    def test_batch_matches_loop_on_gaussian(self, rng):
        problem = GaussianTargetProblem(np.ones(3), 2.5, evaluator=BatchEvaluator())
        reference = GaussianTargetProblem(np.ones(3), 2.5)
        block = rng.standard_normal((17, 3))
        batch = problem.log_density_batch(block)
        loop = np.array([reference.log_density(theta) for theta in block])
        np.testing.assert_allclose(batch, loop, rtol=1e-12)
        stats = problem.evaluation_stats
        assert stats.log_density_evaluations == 17
        assert stats.batch_calls >= 1

    def test_chunking_respects_max_batch_size(self, rng):
        problem = GaussianTargetProblem(np.zeros(2), 1.0, evaluator=BatchEvaluator(max_batch_size=4))
        block = rng.standard_normal((10, 2))
        problem.log_density_batch(block)
        assert problem.evaluation_stats.batch_calls == 3  # 4 + 4 + 2

    def test_batch_matches_loop_on_poisson_posterior(self, small_poisson_factory, rng):
        problem = small_poisson_factory.problem_for_level(0)
        block = 0.3 * rng.standard_normal((5, problem.dim))
        batch = problem.log_density_batch(block)
        loop = np.array([problem.log_density(theta) for theta in block])
        np.testing.assert_allclose(batch, loop, rtol=1e-8)


class TestPoolEvaluator:
    def test_pool_matches_inprocess(self, rng):
        evaluator = PoolEvaluator(processes=2)
        problem = DensitySamplingProblem(
            dim=3, log_density=_quadratic_log_density, evaluator=evaluator
        )
        block = rng.standard_normal((8, 3))
        try:
            values = problem.log_density_batch(block)
        finally:
            evaluator.close()
        expected = np.array([_quadratic_log_density(theta) for theta in block])
        np.testing.assert_allclose(values, expected, rtol=1e-12)
        assert problem.evaluation_stats.log_density_evaluations == 8
        assert problem.evaluation_stats.batch_calls == 1

    def test_small_batches_stay_in_process(self):
        evaluator = PoolEvaluator(processes=2, min_batch_size=4)
        problem = DensitySamplingProblem(
            dim=2, log_density=_quadratic_log_density, evaluator=evaluator
        )
        problem.log_density_batch(np.zeros((2, 2)))
        assert evaluator._pool is None  # never spawned
        evaluator.close()

    def test_min_batch_size_honored_as_documented(self, rng):
        # Regression: min_batch_size=1 was silently clamped to 2, so single-
        # vector batches never reached the pool despite the docstring.
        evaluator = PoolEvaluator(processes=2, min_batch_size=1)
        problem = DensitySamplingProblem(
            dim=3, log_density=_quadratic_log_density, evaluator=evaluator
        )
        single = rng.standard_normal((1, 3))
        try:
            values = problem.log_density_batch(single)
            assert evaluator._pool is not None, "single batch should use the pool"
        finally:
            evaluator.close()
        np.testing.assert_allclose(values, [_quadratic_log_density(single[0])])

    def test_min_batch_size_validation(self):
        with pytest.raises(ValueError, match="min_batch_size"):
            PoolEvaluator(processes=1, min_batch_size=0)

    def test_close_is_graceful_and_pool_rebuilds(self, rng):
        evaluator = PoolEvaluator(processes=2)
        problem = DensitySamplingProblem(
            dim=2, log_density=_quadratic_log_density, evaluator=evaluator
        )
        block = rng.standard_normal((4, 2))
        first = problem.log_density_batch(block)
        evaluator.close()
        assert evaluator._pool is None
        # a closed evaluator lazily rebuilds its pool on the next batch
        try:
            second = problem.log_density_batch(block)
        finally:
            evaluator.close()
        np.testing.assert_array_equal(first, second)


class TestMakeEvaluator:
    def test_dispatch(self):
        assert isinstance(make_evaluator("inprocess"), InProcessEvaluator)
        caching = make_evaluator("caching", cache_size=7)
        assert isinstance(caching, CachingEvaluator)
        assert caching.max_entries == 7
        assert isinstance(make_evaluator("batch", max_batch_size=3), BatchEvaluator)
        assert isinstance(make_evaluator("pool", processes=1), PoolEvaluator)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            make_evaluator("quantum")

    def test_factory_evaluator_hook_is_consulted(self):
        """Overriding MIComponentFactory.evaluator(index) reaches the problems."""

        class HookedFactory(GaussianHierarchyFactory):
            def evaluator(self, index):
                return CachingEvaluator(max_entries=5)

        problem = HookedFactory(dim=2, num_levels=2).problem_for_level(1)
        assert isinstance(problem.evaluator, CachingEvaluator)
        assert problem.evaluator.max_entries == 5

    def test_callable_inner_gives_fresh_instance_per_problem(self):
        factory = GaussianHierarchyFactory(
            dim=2,
            num_levels=2,
            evaluation_backend="caching",
            evaluator_options={"inner": BatchEvaluator},  # callable, not instance
        )
        p0, p1 = factory.problem_for_level(0), factory.problem_for_level(1)
        assert isinstance(p0.evaluator.inner, BatchEvaluator)
        assert p0.evaluator.inner is not p1.evaluator.inner

    def test_unknown_options_rejected(self):
        with pytest.raises(ValueError, match="cache_sise"):
            make_evaluator("caching", cache_sise=16)
        with pytest.raises(ValueError, match="cache_size"):
            make_evaluator("batch", cache_size=16)


class TestMLMCMCWithEvaluators:
    def test_caching_estimate_bit_identical_to_inprocess(self):
        """The headline parity property: caching changes cost, not statistics."""
        num_samples = [400, 150, 60]
        kwargs = dict(dim=2, num_levels=3, subsampling=1, proposal_scale=2.5)
        plain = MLMCMCSampler(
            GaussianHierarchyFactory(**kwargs), num_samples=num_samples, seed=33
        ).run()
        cached = MLMCMCSampler(
            GaussianHierarchyFactory(evaluation_backend="caching", **kwargs),
            num_samples=num_samples,
            seed=33,
        ).run()
        np.testing.assert_array_equal(plain.mean, cached.mean)
        for a, b in zip(plain.estimate.contributions, cached.estimate.contributions):
            np.testing.assert_array_equal(a.mean, b.mean)
        # caching must actually have reduced model evaluations
        assert sum(cached.model_evaluations) < sum(plain.model_evaluations)
        assert sum(stats.cache_hits for stats in cached.evaluation_stats) > 0

    def test_sequential_result_carries_evaluator_stats(self, gaussian_factory):
        result = MLMCMCSampler(gaussian_factory, num_samples=[200, 80, 30], seed=3).run()
        assert len(result.evaluation_stats) == 3
        for count, stats in zip(result.model_evaluations, result.evaluation_stats):
            assert count == stats.log_density_evaluations > 0
            assert stats.wall_time > 0.0
        assert all(cost > 0.0 for cost in result.costs_per_sample)

    def test_parallel_result_carries_evaluator_stats(self):
        from repro.parallel import ConstantCostModel, MeasuredCostModel, ParallelMLMCMCSampler

        factory = GaussianHierarchyFactory(dim=2, num_levels=2, subsampling=2)
        cost_model = ConstantCostModel([0.01, 0.04])
        result = ParallelMLMCMCSampler(
            factory,
            num_samples=[120, 40],
            num_ranks=8,
            cost_model=cost_model,
            seed=11,
        ).run()
        assert set(result.evaluation_stats) == {0, 1}
        assert all(s.log_density_evaluations > 0 for s in result.evaluation_stats.values())
        assert result.model_evaluations[0] > result.model_evaluations[1]
        # worker-free layouts still aggregate stats (possibly empty)
        assert result.worker_busy_time() >= 0.0
        # measured cost models consume the result's evaluator statistics
        measured = MeasuredCostModel(ConstantCostModel([1.0, 1.0]))
        for level, stats in result.evaluation_stats.items():
            measured.observe_stats(level, stats)
        assert measured.num_observations(0) == 1
        assert 0.0 < measured.mean(0) < 1.0  # real per-eval seconds, not the prior

    def test_cost_model_from_stats(self):
        from repro.parallel.costmodel import cost_model_from_stats

        stats = EvaluatorStats()
        stats.record(EvaluationRecord("log_density", wall_time=2.0, cost=1.0))
        stats.record(EvaluationRecord("log_density", wall_time=4.0, cost=1.0))
        # QOI events must not dilute the per-density-evaluation mean ...
        stats.record(EvaluationRecord("qoi", wall_time=0.0, cost=1.0))
        model = cost_model_from_stats({0: stats})
        assert model.mean(0) == pytest.approx(3.0)
        assert model.num_observations(0) == 1  # one snapshot = one observation
        # ... and QOI-only snapshots are ignored entirely
        qoi_only = EvaluatorStats()
        qoi_only.record(EvaluationRecord("qoi", wall_time=1.0, cost=1.0))
        model.observe_stats(0, qoi_only)
        assert model.num_observations(0) == 1
