"""Fault tolerance: fault injection, checkpoint/resume, dead-rank recovery.

Covers the robustness subsystem around the parallel MLMCMC machine:

* declarative :class:`FaultPlan` (role addressing, JSON round-trip),
* chain and checkpoint snapshots (bitwise continuation, signature guards),
* simulated-backend chaos (deterministic degradation, no livelock),
* multiprocess recovery (kill → respawn → complete) and graceful degradation
  (budget exhausted → partial result + FailureReport, never a bare crash),
* checkpoint/resume identity: a resumed zero-fault run reproduces the
  original estimate bitwise,
* the plumbing satellites: dropped-send accounting, atomic manifests and the
  ``--checkpoint-dir/--resume/--fault-plan`` runner options.
"""

from __future__ import annotations

import queue as queue_module

import numpy as np
import pytest

from repro.core.chain import SingleChainMCMC
from repro.core.kernels import MHKernel
from repro.core.problem import GaussianTargetProblem
from repro.core.proposals import GaussianRandomWalkProposal
from repro.experiments import run_scenario, validate_manifest
from repro.experiments.manifest import ManifestError, write_manifest
from repro.experiments.runner import BackendNotApplicableError
from repro.models.gaussian import GaussianHierarchyFactory
from repro.parallel import (
    CheckpointConfig,
    CheckpointError,
    Checkpointer,
    ConstantCostModel,
    EvaluatorFault,
    FaultPlan,
    FaultToleranceConfig,
    InjectedEvaluatorError,
    ParallelMLMCMCSampler,
    RankKill,
)
from repro.parallel.mp import _ProcessTransport
from repro.parallel.transport import Message


@pytest.fixture(scope="module")
def factory():
    return GaussianHierarchyFactory(dim=2, num_levels=3, subsampling=3)


def _sampler(factory, **overrides):
    options = dict(
        num_samples=[60, 24, 10],
        num_ranks=10,
        cost_model=ConstantCostModel([0.01, 0.04, 0.16]),
        seed=5,
    )
    options.update(overrides)
    return ParallelMLMCMCSampler(factory, **options)


def _chain(seed: int = 0) -> SingleChainMCMC:
    problem = GaussianTargetProblem(np.zeros(2), 1.0)
    kernel = MHKernel(problem, GaussianRandomWalkProposal(0.5, dim=2))
    return SingleChainMCMC(
        kernel, np.zeros(2), np.random.default_rng(seed), burnin=5
    )


# ----------------------------------------------------------------------------
class TestChainSnapshot:
    def test_restored_chain_continues_bitwise_identically(self):
        reference = _chain()
        reference.run(40)

        snapshotted = _chain()
        snapshotted.run(15)
        state = snapshotted.state_dict()

        restored = _chain(seed=999)  # wrong rng seed: must be overwritten
        restored.load_state_dict(state)
        restored.run_steps(reference.steps_taken - restored.steps_taken)

        np.testing.assert_array_equal(
            reference.samples.parameters(), restored.samples.parameters()
        )
        np.testing.assert_array_equal(
            reference.corrections.fine_matrix(), restored.corrections.fine_matrix()
        )
        assert reference.steps_taken == restored.steps_taken

    def test_level_mismatch_rejected(self):
        state = _chain().state_dict()
        state["level"] = 3
        with pytest.raises(ValueError, match="level"):
            _chain().load_state_dict(state)


# ----------------------------------------------------------------------------
class TestFaultPlan:
    def test_round_trips_through_json_layout(self):
        plan = FaultPlan(
            seed=11,
            kills=[RankKill(after_events=40, role="controller", index=2)],
            evaluator_faults=[EvaluatorFault(after_computes=7, rank=4)],
        )
        assert FaultPlan.from_dict(plan.as_dict()) == plan

    def test_resolve_maps_roles_to_ranks(self, factory):
        sampler = _sampler(
            factory,
            fault_plan=FaultPlan(seed=1, kills=[RankKill(after_events=9, role="root")]),
        )
        (kill,) = sampler.fault_plan.kills
        assert kill.rank == sampler.layout.root_rank
        assert kill.role is None

    def test_resolve_rejects_out_of_range_index(self, factory):
        plan = FaultPlan(seed=1, kills=[RankKill(after_events=9, role="root", index=5)])
        with pytest.raises(ValueError, match=r"root\[5\]"):
            _sampler(factory, fault_plan=plan)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            FaultPlan.from_dict({"seed": 1, "kils": []})

    def test_fault_address_requires_exactly_one_of_rank_or_role(self):
        with pytest.raises(ValueError, match="exactly one"):
            RankKill(after_events=1)
        with pytest.raises(ValueError, match="exactly one"):
            RankKill(after_events=1, rank=2, role="worker")


# ----------------------------------------------------------------------------
class TestCheckpointer:
    def _checkpointer(self, tmp_path, signature=None):
        return Checkpointer(
            CheckpointConfig(directory=tmp_path / "ck"),
            signature if signature is not None else {"seed": 5},
        )

    def test_write_read_round_trip(self, tmp_path):
        ck = self._checkpointer(tmp_path)
        ck.write(7, "controller", {"level": 1, "data": np.arange(3)})
        payload = self._checkpointer(tmp_path).read(7, "controller")
        assert payload["level"] == 1
        np.testing.assert_array_equal(payload["data"], np.arange(3))

    def test_signature_mismatch_raises(self, tmp_path):
        self._checkpointer(tmp_path).write(7, "controller", {"level": 1})
        other = self._checkpointer(tmp_path, signature={"seed": 6})
        with pytest.raises(CheckpointError, match="signature"):
            other.read(7, "controller")
        # bulk snapshot collection skips (never folds in) mismatched files
        assert other.snapshots("controller") == {}

    def test_missing_snapshot_is_none_not_error(self, tmp_path):
        ck = self._checkpointer(tmp_path)
        assert ck.read(3, "collector") is None
        assert ck.read_final() is None


# ----------------------------------------------------------------------------
class TestSimulatedChaos:
    KILL_PLAN = FaultPlan(seed=3, kills=[RankKill(after_events=60, role="controller")])

    def test_kill_degrades_deterministically_with_fault_tolerance(self, factory):
        def go():
            result = _sampler(
                factory,
                fault_plan=self.KILL_PLAN,
                fault_tolerance=FaultToleranceConfig(),
            ).run()
            return result

        first, second = go(), go()
        for result in (first, second):
            assert result.degraded
            assert result.failure_report is not None
            assert not result.failure_report.recovered
            assert "no rank recovery" in result.failure_report.exhausted_reason
            # every salvaged collection passed its internal-consistency checks
            for collection in result.corrections.values():
                collection.validate()
            with pytest.raises(RuntimeError, match="degraded"):
                result.mean
        assert [f.rank for f in first.failure_report.failures] == [
            f.rank for f in second.failure_report.failures
        ]
        assert first.failure_report.salvaged_per_level == (
            second.failure_report.salvaged_per_level
        )
        assert first.virtual_time == second.virtual_time

    def test_kill_without_fault_tolerance_raises_legacy_error(self, factory):
        with pytest.raises(RuntimeError, match="killed by the fault plan"):
            _sampler(factory, fault_plan=self.KILL_PLAN).run()

    def test_injected_evaluator_fault_raises(self, factory):
        plan = FaultPlan(
            seed=2,
            evaluator_faults=[EvaluatorFault(after_computes=5, role="controller")],
        )
        with pytest.raises(InjectedEvaluatorError, match="model evaluation"):
            _sampler(factory, fault_plan=plan).run()

    def test_plan_without_faults_changes_nothing(self, factory):
        baseline = _sampler(factory).run()
        with_plan = _sampler(factory, fault_plan=FaultPlan(seed=9)).run()
        np.testing.assert_array_equal(baseline.mean, with_plan.mean)
        assert baseline.virtual_time == with_plan.virtual_time


# ----------------------------------------------------------------------------
class TestMultiprocessRecovery:
    def test_killed_controller_is_respawned_and_run_completes(self, factory):
        plan = FaultPlan(
            seed=7, kills=[RankKill(after_events=40, role="controller", index=0)]
        )
        result = _sampler(
            factory,
            backend="multiprocess",
            fault_plan=plan,
            fault_tolerance=FaultToleranceConfig(),
        ).run()
        assert not result.degraded
        report = result.failure_report
        assert report is not None and report.recovered
        assert report.restarts_used >= 1
        assert any(f.role == "controller" for f in report.failures)
        assert any(r.role == "controller" for r in report.reassignments)
        # the machine still met its collection targets through the respawn
        for level, target in enumerate([60, 24, 10]):
            assert len(result.corrections[level]) >= target
        assert np.all(np.isfinite(result.mean))
        assert np.linalg.norm(result.mean - factory.exact_mean()) < 1.5

    def test_non_restartable_death_degrades_instead_of_raising(self, factory):
        plan = FaultPlan(seed=3, kills=[RankKill(after_events=4, role="root")])
        result = _sampler(
            factory,
            backend="multiprocess",
            fault_plan=plan,
            fault_tolerance=FaultToleranceConfig(),
        ).run()
        assert result.degraded
        report = result.failure_report
        assert not report.recovered
        assert "not restartable" in report.exhausted_reason
        assert report.dead_ranks
        for collection in result.corrections.values():
            collection.validate()

    def test_exhausted_budget_raises_when_policy_is_raise(self, factory):
        plan = FaultPlan(seed=3, kills=[RankKill(after_events=4, role="root")])
        sampler = _sampler(
            factory,
            backend="multiprocess",
            fault_plan=plan,
            fault_tolerance=FaultToleranceConfig(on_exhausted="raise"),
        )
        with pytest.raises(RuntimeError, match="recovery exhausted"):
            sampler.run()


# ----------------------------------------------------------------------------
class TestSocketRecovery:
    """The mp chaos contract must hold verbatim over the TCP transport.

    Heartbeats travel over the wire (the ``lost`` metadata on each recorded
    failure proves the driver was receiving them), dead ranks are respawned
    in place with their undelivered messages replayed by the hub, and a
    non-restartable death degrades into a structured report instead of a
    hang.
    """

    def test_killed_controller_is_respawned_and_run_completes(self, factory):
        plan = FaultPlan(
            seed=7, kills=[RankKill(after_events=40, role="controller", index=0)]
        )
        result = _sampler(
            factory,
            backend="socket",
            fault_plan=plan,
            # A beat every 100 ms (instead of the 500 ms default) exercises
            # the injectable cadence; the larger grace multiple keeps the
            # absolute hang deadline at 2 s.  Each incarnation also beats
            # once synchronously at startup, so even a kill that fires
            # before the first interval elapses leaves ``lost`` populated.
            fault_tolerance=FaultToleranceConfig(
                heartbeat_interval_s=0.1, heartbeat_grace=20.0
            ),
        ).run()
        assert not result.degraded
        report = result.failure_report
        assert report is not None and report.recovered
        assert report.restarts_used >= 1
        controller_failures = [f for f in report.failures if f.role == "controller"]
        assert controller_failures
        # the heartbeat metadata at last contact arrived over the socket
        assert "level" in controller_failures[0].lost
        assert any(r.role == "controller" for r in report.reassignments)
        for level, target in enumerate([60, 24, 10]):
            assert len(result.corrections[level]) >= target
        assert np.all(np.isfinite(result.mean))
        assert np.linalg.norm(result.mean - factory.exact_mean()) < 1.5

    def test_heartbeats_flow_over_the_wire(self, factory):
        sampler = _sampler(
            factory,
            backend="socket",
            fault_tolerance=FaultToleranceConfig(heartbeat_interval_s=0.05),
        )
        world, _root, _phonebook = sampler.build_world()
        world.run()
        # every rank beats at least once (synchronously at startup), routed
        # child -> hub -> driver over TCP frames rather than an OS queue
        assert world.heartbeats_received >= sampler.layout.num_ranks

    def test_killed_worker_is_respawned_and_run_completes(self, factory):
        plan = FaultPlan(
            seed=5, kills=[RankKill(after_events=30, role="worker", index=0)]
        )
        result = _sampler(
            factory,
            backend="socket",
            num_ranks=16,
            workers_per_group=1,
            fault_plan=plan,
            fault_tolerance=FaultToleranceConfig(),
        ).run()
        assert not result.degraded
        report = result.failure_report
        assert report is not None and report.recovered
        assert any(f.role == "worker" for f in report.failures)
        assert any(r.role == "worker" for r in report.reassignments)
        assert np.all(np.isfinite(result.mean))

    def test_root_kill_degrades_with_structured_report_not_a_hang(self, factory):
        plan = FaultPlan(seed=3, kills=[RankKill(after_events=4, role="root")])
        result = _sampler(
            factory,
            backend="socket",
            fault_plan=plan,
            fault_tolerance=FaultToleranceConfig(),
        ).run()
        assert result.degraded
        report = result.failure_report
        assert not report.recovered
        assert "not restartable" in report.exhausted_reason
        assert report.dead_ranks
        for collection in result.corrections.values():
            collection.validate()


# ----------------------------------------------------------------------------
class TestTimeoutInjection:
    """Receive deadlines and poll cadence are injectable — no fixed sleeps."""

    def test_receive_poll_interval_bounds_timeout_latency(self, factory):
        from repro.parallel.transport import Receive, ReceiveTimeout
        from repro.parallel.roles.root import RootProcess

        import time as time_module

        process = RootProcess(0, _sampler(factory).config)
        transport = _ProcessTransport(
            rank=0,
            queues={0: queue_module.Queue()},
            origin=time_module.perf_counter(),
            trace_enabled=False,
            receive_timeout_s=0.1,
            receive_poll_s=0.02,
        )
        start = time_module.perf_counter()
        with pytest.raises(ReceiveTimeout):
            transport._blocking_receive(process, Receive(tags=("NEVER_SENT",)))
        elapsed = time_module.perf_counter() - start
        # deadline + at most one poll interval of overshoot (plus margin):
        # with the legacy hard-coded 1.0 s poll this would take >= 1 s.
        assert 0.1 <= elapsed < 0.5

    def test_receive_poll_must_be_positive(self):
        with pytest.raises(ValueError, match="receive_poll_s"):
            FaultToleranceConfig(receive_poll_s=0.0)

    def test_config_round_trips_with_injected_timeouts(self):
        config = FaultToleranceConfig(
            heartbeat_interval_s=0.05, receive_timeout_s=0.5, receive_poll_s=0.01
        )
        assert FaultToleranceConfig.from_dict(config.as_dict()) == config


# ----------------------------------------------------------------------------
class TestCheckpointResume:
    def test_resumed_run_is_bitwise_identical(self, factory, tmp_path):
        checkpoint = CheckpointConfig(directory=tmp_path / "ck")
        original = _sampler(factory, checkpoint=checkpoint).run()
        resumed = _sampler(factory, checkpoint=checkpoint, resume=True).run()

        assert resumed.resumed_from is not None
        assert resumed.resumed_from.endswith("final.ckpt")
        np.testing.assert_array_equal(original.mean, resumed.mean)
        for level, collection in original.corrections.items():
            np.testing.assert_array_equal(
                collection.fine_matrix(), resumed.corrections[level].fine_matrix()
            )
        assert original.samples_per_level == resumed.samples_per_level

    def test_resume_without_checkpoint_config_rejected(self, factory):
        with pytest.raises(ValueError, match="resume"):
            _sampler(factory, resume=True).run()

    def test_resume_without_final_snapshot_runs_normally(self, factory, tmp_path):
        checkpoint = CheckpointConfig(directory=tmp_path / "empty")
        result = _sampler(factory, checkpoint=checkpoint, resume=True).run()
        assert result.resumed_from is None
        assert np.all(np.isfinite(result.mean))

    def test_mid_run_snapshots_salvage_partial_levels(self, factory, tmp_path):
        # A degraded run with checkpointing recovers collector snapshots for
        # levels the root never received in full.
        checkpoint = CheckpointConfig(directory=tmp_path / "ck", every_samples=2)
        plan = FaultPlan(
            seed=3, kills=[RankKill(after_events=60, role="controller")]
        )
        result = _sampler(
            factory,
            fault_plan=plan,
            fault_tolerance=FaultToleranceConfig(),
            checkpoint=checkpoint,
        ).run()
        assert result.degraded
        salvaged = result.failure_report.salvaged_per_level
        assert salvaged, "nothing salvaged despite periodic checkpoints"
        for level, collection in result.corrections.items():
            collection.validate()
            assert salvaged[level] == len(collection)


# ----------------------------------------------------------------------------
class TestDropAccounting:
    def test_send_to_unknown_rank_is_counted_not_lost_silently(self):
        inbox = queue_module.Queue()
        transport = _ProcessTransport(
            rank=0, queues={0: inbox}, origin=0.0, trace_enabled=False
        )
        transport._post(Message(source=0, dest=99, tag="X", payload=None))
        assert transport.messages_dropped == 1
        assert transport.messages_sent == 0
        transport._post(Message(source=0, dest=0, tag="X", payload=None))
        assert transport.messages_dropped == 1
        assert transport.messages_sent == 1

    def test_world_summary_surfaces_drop_counters(self, factory):
        sampler = _sampler(factory, backend="multiprocess")
        world, _root, _phonebook = sampler.build_world()
        world.run()
        summary = world.summary()
        assert summary["messages_dropped"] == 0
        assert summary["chaos_dropped"] == 0


# ----------------------------------------------------------------------------
class TestManifestPlumbing:
    def test_manifest_requires_fault_tolerance_field(self, tmp_path):
        run = run_scenario("example-load-balancing", quick=True, out_dir=tmp_path)
        manifest = dict(run.manifest)
        validate_manifest(manifest)
        del manifest["fault_tolerance"]
        with pytest.raises(ManifestError, match="fault_tolerance"):
            validate_manifest(manifest)

    def test_write_manifest_is_atomic_leaves_no_temp_files(self, tmp_path):
        run = run_scenario("example-load-balancing", quick=True)
        path = write_manifest(run.manifest, tmp_path)
        assert path.exists()
        leftovers = [p for p in tmp_path.iterdir() if p != path]
        assert leftovers == []

    def test_failed_write_cleans_up_its_temp_file(self, tmp_path):
        run = run_scenario("example-load-balancing", quick=True)
        manifest = dict(run.manifest)
        manifest["results"] = {"bad": float("nan")}
        # _scrub normally prevents this; simulate a corrupted payload reaching
        # the writer and confirm validation stops it with no debris on disk.
        with pytest.raises(ManifestError):
            write_manifest(manifest, tmp_path)
        assert list(tmp_path.iterdir()) == []


# ----------------------------------------------------------------------------
class TestRunnerOptions:
    def test_fault_options_rejected_for_non_parallel_scenarios(self, tmp_path):
        with pytest.raises(BackendNotApplicableError, match="checkpoint"):
            run_scenario(
                "table3-poisson-multilevel", quick=True, checkpoint_dir=tmp_path
            )
        with pytest.raises(BackendNotApplicableError, match="fault"):
            run_scenario(
                "table3-poisson-multilevel", quick=True, fault_plan=FaultPlan(seed=1)
            )

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(BackendNotApplicableError, match="resume"):
            run_scenario("example-load-balancing", quick=True, resume=True)

    def test_scenario_checkpoint_resume_round_trip(self, tmp_path):
        ck = tmp_path / "ck"
        first = run_scenario("example-load-balancing", quick=True, checkpoint_dir=ck)
        second = run_scenario(
            "example-load-balancing", quick=True, checkpoint_dir=ck, resume=True
        )
        assert first.payload["mean"] == second.payload["mean"]
        assert first.manifest["fault_tolerance"] == {
            "checkpoint_dir": str(ck),
            "resume_requested": False,
        }
        assert second.manifest["fault_tolerance"]["resumed_from"].endswith(
            "final.ckpt"
        )

    def test_scenario_fault_plan_recorded_in_manifest(self, tmp_path):
        plan = FaultPlan(
            seed=3, kills=[RankKill(after_events=60, role="controller")]
        )
        run = run_scenario(
            "example-load-balancing", quick=True, fault_plan=plan, out_dir=tmp_path
        )
        ft = run.manifest["fault_tolerance"]
        assert ft["fault_plan"] == plan.as_dict()
        assert ft["degraded"] is True
        assert ft["failure_report"]["failures"]
        assert run.payload["mean"] is None
