"""Tests for MCMC proposals (random walk, AM, pCN, independence, subsampling)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayes.distributions import GaussianDensity
from repro.core.proposals import (
    AdaptiveMetropolisProposal,
    BufferedChainSource,
    GaussianRandomWalkProposal,
    IndependenceProposal,
    PreconditionedCrankNicolsonProposal,
    SubsamplingProposal,
)
from repro.core.state import SamplingState


class TestSamplingState:
    def test_parameters_are_flattened_floats(self):
        state = SamplingState(parameters=[[1, 2], [3, 4]])
        assert state.parameters.shape == (4,)
        assert state.dim == 4

    def test_copy_preserves_and_overrides(self):
        state = SamplingState(parameters=np.array([1.0]), log_density=-2.0, qoi=np.array([5.0]))
        clone = state.copy()
        assert clone.log_density == -2.0
        assert clone.qoi is not state.qoi
        overridden = state.copy(log_density=None)
        assert overridden.log_density is None

    def test_invalidate_caches(self):
        state = SamplingState(parameters=np.zeros(2), log_density=1.0, qoi=np.zeros(1))
        state.invalidate_caches()
        assert state.log_density is None and state.qoi is None


class TestRandomWalk:
    def test_symmetric_zero_correction(self, rng):
        proposal = GaussianRandomWalkProposal(0.5, dim=3)
        result = proposal.propose(SamplingState(parameters=np.zeros(3)), rng)
        assert result.log_correction == 0.0
        assert proposal.is_symmetric
        assert result.state.dim == 3

    def test_step_statistics(self, rng):
        proposal = GaussianRandomWalkProposal(np.array([0.25, 4.0]))
        current = SamplingState(parameters=np.zeros(2))
        steps = np.stack(
            [proposal.propose(current, rng).state.parameters for _ in range(4000)]
        )
        np.testing.assert_allclose(steps.mean(axis=0), 0.0, atol=0.1)
        np.testing.assert_allclose(steps.var(axis=0), [0.25, 4.0], rtol=0.15)

    def test_full_covariance(self, rng):
        cov = np.array([[1.0, 0.7], [0.7, 1.0]])
        proposal = GaussianRandomWalkProposal(cov)
        current = SamplingState(parameters=np.zeros(2))
        steps = np.stack(
            [proposal.propose(current, rng).state.parameters for _ in range(4000)]
        )
        np.testing.assert_allclose(np.cov(steps.T), cov, atol=0.12)

    def test_dimension_checks(self, rng):
        with pytest.raises(ValueError):
            GaussianRandomWalkProposal(1.0)
        with pytest.raises(ValueError):
            GaussianRandomWalkProposal(-1.0, dim=2)
        proposal = GaussianRandomWalkProposal(1.0, dim=2)
        with pytest.raises(ValueError):
            proposal.propose(SamplingState(parameters=np.zeros(3)), rng)


class TestAdaptiveMetropolis:
    def test_adapts_after_warmup(self, rng):
        proposal = AdaptiveMetropolisProposal(1.0, dim=2, adapt_start=10, adapt_interval=10)
        state = SamplingState(parameters=np.zeros(2))
        target_cov = np.array([[2.0, 0.9], [0.9, 1.0]])
        chol = np.linalg.cholesky(target_cov)
        for i in range(1, 300):
            sample = SamplingState(parameters=chol @ rng.standard_normal(2))
            proposal.adapt(i, sample, accepted=True)
        assert proposal.num_adaptations > 0
        adapted = proposal.current_covariance()
        scale = 2.4**2 / 2
        np.testing.assert_allclose(adapted, scale * target_cov, rtol=0.35, atol=0.3)
        # proposals still work after adaptation
        result = proposal.propose(state, rng)
        assert result.state.dim == 2

    def test_no_adaptation_before_start(self, rng):
        proposal = AdaptiveMetropolisProposal(1.0, dim=2, adapt_start=1000)
        for i in range(1, 200):
            proposal.adapt(i, SamplingState(parameters=rng.standard_normal(2)), True)
        assert proposal.num_adaptations == 0
        np.testing.assert_allclose(proposal.current_covariance(), np.eye(2))

    def test_degenerate_history_keeps_previous_covariance(self):
        proposal = AdaptiveMetropolisProposal(1.0, dim=2, adapt_start=1, adapt_interval=1, epsilon=0.0)
        state = SamplingState(parameters=np.zeros(2))
        for i in range(1, 50):
            proposal.adapt(i, state, True)  # constant history -> singular covariance
        np.testing.assert_allclose(proposal.current_covariance(), np.eye(2))


class TestPCN:
    def test_invariance_with_respect_to_prior(self, rng):
        # A chain driven only by pCN proposals (always accepted) must preserve the prior.
        prior = GaussianDensity(np.array([1.0, -1.0]), np.array([2.0, 0.5]))
        proposal = PreconditionedCrankNicolsonProposal(prior, beta=0.5)
        state = SamplingState(parameters=prior.sample(rng))
        samples = []
        for _ in range(8000):
            state = proposal.propose(state, rng).state
            samples.append(state.parameters)
        samples = np.stack(samples[500:])
        np.testing.assert_allclose(samples.mean(axis=0), prior.mean, atol=0.15)
        np.testing.assert_allclose(samples.var(axis=0), [2.0, 0.5], rtol=0.2)

    def test_correction_term_consistency(self, rng):
        # For the pCN kernel, posterior ratio + correction must equal the likelihood
        # ratio, i.e. prior ratio + correction == 0.
        prior = GaussianDensity(np.zeros(2), 2.0)
        proposal = PreconditionedCrankNicolsonProposal(prior, beta=0.3)
        current = SamplingState(parameters=prior.sample(rng))
        result = proposal.propose(current, rng)
        prior_ratio = prior.log_density(result.state.parameters) - prior.log_density(
            current.parameters
        )
        assert prior_ratio + result.log_correction == pytest.approx(0.0, abs=1e-9)

    def test_beta_validation(self):
        prior = GaussianDensity(np.zeros(2), 1.0)
        with pytest.raises(ValueError):
            PreconditionedCrankNicolsonProposal(prior, beta=0.0)
        with pytest.raises(ValueError):
            PreconditionedCrankNicolsonProposal(prior, beta=1.5)

    @given(beta=st.floats(0.05, 1.0))
    @settings(max_examples=20, deadline=None)
    def test_property_correction_antisymmetry(self, beta):
        rng = np.random.default_rng(42)
        prior = GaussianDensity(np.zeros(2), 1.0)
        proposal = PreconditionedCrankNicolsonProposal(prior, beta=beta)
        x = SamplingState(parameters=prior.sample(rng))
        y = proposal.propose(x, rng).state
        forward = proposal._log_transition(y.parameters, x.parameters)
        backward = proposal._log_transition(x.parameters, y.parameters)
        correction = proposal.propose(x, rng).log_correction
        assert np.isfinite(forward) and np.isfinite(backward) and np.isfinite(correction)


class TestIndependence:
    def test_correction_matches_density_ratio(self, rng):
        density = GaussianDensity(np.zeros(2), 1.0)
        proposal = IndependenceProposal(density)
        current = SamplingState(parameters=np.array([0.5, -0.5]))
        result = proposal.propose(current, rng)
        expected = density.log_density(current.parameters) - density.log_density(
            result.state.parameters
        )
        assert result.log_correction == pytest.approx(expected)


class TestSubsampling:
    def test_buffered_source_fifo(self):
        source = BufferedChainSource(subsampling_rate=3)
        assert source.subsampling_rate == 3
        a = SamplingState(parameters=np.array([1.0]))
        b = SamplingState(parameters=np.array([2.0]))
        source.push(a)
        source.push(b)
        assert source.next_sample() is a
        assert source.next_sample() is b
        with pytest.raises(RuntimeError):
            source.next_sample()

    def test_subsampling_proposal_passes_coarse_state(self, rng):
        source = BufferedChainSource()
        coarse = SamplingState(parameters=np.array([3.0, 4.0]), log_density=-1.5)
        source.push(coarse)
        proposal = SubsamplingProposal(source)
        result = proposal.propose(SamplingState(parameters=np.zeros(2)), rng)
        np.testing.assert_allclose(result.state.parameters, [3.0, 4.0])
        assert result.metadata["coarse_state"] is coarse
        assert result.log_correction == 0.0
        assert proposal.num_draws == 1
