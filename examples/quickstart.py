"""Quickstart: sequential and parallel MLMCMC on an analytic model hierarchy.

Runs the ``example-quickstart`` scenario: multilevel MCMC on a three-level
Gaussian hierarchy whose posterior moments are known in closed form, first
with the sequential driver and then with the parallel scheduler on 16 virtual
ranks, comparing both estimates against the exact value.

Run with::

    python examples/quickstart.py [--quick] [--out runs/]

(equivalently: ``python -m repro run example-quickstart``).
"""

from __future__ import annotations

import argparse

from repro.experiments import run_scenario

SCENARIO = "example-quickstart"


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="scaled-down smoke tier")
    parser.add_argument("--out", metavar="DIR", default=None, help="write a run manifest")
    args = parser.parse_args()

    run = run_scenario(SCENARIO, quick=args.quick, out_dir=args.out)
    payload = run.payload
    sequential, parallel = payload["sequential"], payload["parallel"]

    print("=== Sequential MLMCMC ===")
    print(f"exact posterior mean      : {payload['exact_mean']}")
    print(f"multilevel estimate       : {sequential['mean']}")
    for level in sequential["levels"]:
        print(
            f"  level {level['level']}: N = {level['num_samples']:5d}, "
            f"E[correction] = {[round(m, 3) for m in level['mean']]}, "
            f"V[correction] = {[round(v, 3) for v in level['variance']]}"
        )
    print(
        "acceptance rates per level: "
        f"{[round(a, 2) for a in sequential['acceptance_rates']]}"
    )

    print("\n=== Parallel MLMCMC (16 virtual ranks) ===")
    summary = parallel["summary"]
    print(f"multilevel estimate       : {parallel['mean']}")
    print(f"virtual run time          : {summary['virtual_time']:.2f} s")
    print(f"worker utilisation        : {summary['worker_utilization']:.2f}")
    print(f"messages exchanged        : {summary['messages_sent']:.0f}")
    print(f"load-balancer reassignments: {summary['num_rebalances']:.0f}")
    if run.manifest_path:
        print(f"\nmanifest written to {run.manifest_path}")


if __name__ == "__main__":
    main()
