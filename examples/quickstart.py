"""Quickstart: sequential and parallel MLMCMC on an analytic model hierarchy.

Runs multilevel MCMC on a three-level Gaussian hierarchy whose posterior
moments are known in closed form, first with the sequential driver and then
with the parallel scheduler on 16 virtual ranks, and compares both estimates
against the exact value.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    ConstantCostModel,
    GaussianHierarchyFactory,
    MLMCMCSampler,
    ParallelMLMCMCSampler,
)


def main() -> None:
    # A 3-level hierarchy of 2-D Gaussian posteriors converging geometrically,
    # mimicking a PDE posterior under mesh refinement.  Level costs grow like
    # 4^level (a 2-D solve under uniform refinement).
    factory = GaussianHierarchyFactory(dim=2, num_levels=3, decay=0.5, subsampling=5)
    num_samples = [4000, 1000, 400]

    print("=== Sequential MLMCMC ===")
    sequential = MLMCMCSampler(factory, num_samples=num_samples, seed=0).run()
    print(f"exact posterior mean      : {factory.exact_mean()}")
    print(f"multilevel estimate       : {sequential.mean}")
    for contribution in sequential.estimate.contributions:
        print(
            f"  level {contribution.level}: N = {contribution.num_samples:5d}, "
            f"E[correction] = {np.round(contribution.mean, 3)}, "
            f"V[correction] = {np.round(contribution.variance, 3)}"
        )
    print(f"acceptance rates per level: {[round(a, 2) for a in sequential.acceptance_rates]}")

    print("\n=== Parallel MLMCMC (16 virtual ranks) ===")
    parallel = ParallelMLMCMCSampler(
        factory,
        num_samples=num_samples,
        num_ranks=16,
        cost_model=ConstantCostModel([0.01, 0.04, 0.16]),
        seed=1,
    ).run()
    print(f"multilevel estimate       : {parallel.mean}")
    summary = parallel.summary()
    print(f"virtual run time          : {summary['virtual_time']:.2f} s")
    print(f"worker utilisation        : {summary['worker_utilization']:.2f}")
    print(f"messages exchanged        : {summary['messages_sent']}")
    print(f"load-balancer reassignments: {summary['num_rebalances']}")


if __name__ == "__main__":
    main()
