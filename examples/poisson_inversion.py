"""Poisson subsurface-flow inversion (Section 3.1 / 5.1 of the paper).

Runs the ``example-poisson-inversion`` scenario: infer the KL coefficients of
a log-normal diffusion coefficient from noisy point observations of the
pressure field, using a three-level MLMCMC hierarchy of FEM meshes, and report
how well the multilevel posterior mean of the coefficient field matches the
synthetic truth.

The default configuration is scaled down (coarser meshes, fewer KL modes and
samples) so the script finishes in about a minute on a laptop; pass
``--paper-scale`` for the paper's full setting (meshes 1/16, 1/64, 1/256 and
m = 113 modes — expect a long run).

Run with::

    python examples/poisson_inversion.py [--paper-scale] [--quick] [--out runs/]

(equivalently: ``python -m repro run example-poisson-inversion``).
"""

from __future__ import annotations

import argparse
import os
from dataclasses import replace

#: the paper's per-level sample counts (used with --paper-scale)
PAPER_SAMPLES = [10_000, 1000, 100]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true", help="use the paper's full setting")
    parser.add_argument("--samples", type=int, nargs="+", default=None,
                        help="samples per level (coarse to fine)")
    parser.add_argument("--quick", action="store_true", help="scaled-down smoke tier")
    parser.add_argument("--out", metavar="DIR", default=None, help="write a run manifest")
    args = parser.parse_args()
    if args.paper_scale:
        # The presets honour this environment knob (see repro.experiments.presets).
        os.environ["REPRO_BENCH_PAPER_SCALE"] = "1"

    from repro.experiments import get_scenario, run_scenario

    spec = get_scenario("example-poisson-inversion")
    samples = args.samples or (PAPER_SAMPLES if args.paper_scale else None)
    if samples is not None:
        spec = replace(spec, sampler={**spec.sampler, "num_samples": samples})

    run = run_scenario(spec, quick=args.quick, out_dir=args.out)
    payload = run.payload

    print("Level hierarchy:")
    for level in payload["levels"]:
        print(
            f"  level {level['level']}: h = 1/{round(1 / level['mesh_width'])}, "
            f"DOFs = {level['dofs']}, rho = {level['subsampling_rate']}"
        )

    print("\nPer-level telescoping contributions (representative component 0):")
    for level in payload["levels"]:
        print(
            f"  level {level['level']}: N = {level['num_samples']:6d}, "
            f"mean[0] = {level['mean'][0]:8.4f}, "
            f"variance[0] = {level['variance'][0]:.3e}, "
            f"cost/sample = {level['cost_per_sample_s'] * 1e3:7.2f} ms"
        )
    print(f"acceptance rates: {[round(a, 3) for a in payload['acceptance_rates']]}")

    print("\nRecovered diffusion coefficient field (QOI grid):")
    for row in payload["field_recovery"]["rows"]:
        print(
            f"  {row['estimator']:28s} correlation = {row['correlation']:6.3f}, "
            f"relative L2 error = {row['relative_l2_error']:6.3f}"
        )
    print(
        "\n(As in the paper, only the large-scale features are recovered: the KL "
        "truncation and the smoothing effect of the posterior limit the resolution.)"
    )
    if run.manifest_path:
        print(f"\nmanifest written to {run.manifest_path}")


if __name__ == "__main__":
    main()
