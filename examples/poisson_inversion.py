"""Poisson subsurface-flow inversion (Section 3.1 / 5.1 of the paper).

Infers the KL coefficients of a log-normal diffusion coefficient from noisy
point observations of the pressure field, using a two- or three-level MLMCMC
hierarchy of FEM meshes, and reports how well the multilevel posterior mean of
the coefficient field matches the synthetic truth.

The default configuration is scaled down (coarser meshes, fewer KL modes and
samples) so the script finishes in about a minute on a laptop; pass
``--paper-scale`` for the paper's full setting (meshes 1/16, 1/64, 1/256 and
m = 113 modes — expect a long run).

Run with::

    python examples/poisson_inversion.py [--paper-scale]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import MLMCMCSampler, PoissonInverseProblemFactory


def build_factory(paper_scale: bool) -> PoissonInverseProblemFactory:
    if paper_scale:
        return PoissonInverseProblemFactory()  # paper defaults
    # Scaled-down setting; the observation noise is relaxed from the paper's
    # 0.01 to 0.05 so the shortened chains can actually mix (see EXPERIMENTS.md).
    return PoissonInverseProblemFactory(
        mesh_sizes=(8, 16, 32),
        num_kl_modes=24,
        quadrature_points_per_dim=12,
        qoi_resolution=16,
        subsampling_rates=[0, 8, 4],
        noise_std=0.05,
        pcn_beta=0.2,
    )


def field_summary(name: str, field: np.ndarray, shape: tuple[int, int]) -> None:
    grid = field.reshape(shape)
    print(
        f"{name:24s} min = {grid.min():7.3f}, max = {grid.max():7.3f}, "
        f"mean = {grid.mean():7.3f}"
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true", help="use the paper's full setting")
    parser.add_argument("--samples", type=int, nargs="+", default=None,
                        help="samples per level (coarse to fine)")
    args = parser.parse_args()

    factory = build_factory(args.paper_scale)
    num_samples = args.samples or ([10_000, 1000, 100] if args.paper_scale else [1200, 300, 80])

    print("Level hierarchy:")
    for row in factory.level_summary():
        print(
            f"  level {row['level']}: h = 1/{round(1 / row['mesh_width'])}, "
            f"DOFs = {row['dofs']}, rho = {row['subsampling_rate']}"
        )

    sampler = MLMCMCSampler(factory, num_samples=num_samples, seed=2021)
    result = sampler.run()

    print("\nPer-level telescoping contributions (representative component 0):")
    for contribution in result.estimate.contributions:
        print(
            f"  level {contribution.level}: N = {contribution.num_samples:6d}, "
            f"mean[0] = {contribution.mean[0]:8.4f}, "
            f"variance[0] = {contribution.variance[0]:.3e}, "
            f"cost/sample = {contribution.cost_per_sample * 1e3:7.2f} ms"
        )
    print(f"acceptance rates: {[round(a, 3) for a in result.acceptance_rates]}")

    truth = factory.true_qoi()
    estimate = result.mean
    shape = factory.qoi_grid_shape()
    print("\nRecovered diffusion coefficient field (QOI grid):")
    field_summary("synthetic truth", truth, shape)
    field_summary("multilevel estimate", estimate, shape)
    correlation = np.corrcoef(estimate, truth)[0, 1]
    relative_error = np.linalg.norm(estimate - truth) / np.linalg.norm(truth)
    print(f"correlation(estimate, truth) = {correlation:.3f}")
    print(f"relative L2 error            = {relative_error:.3f}")
    print(
        "\n(As in the paper, only the large-scale features are recovered: the KL "
        "truncation and the smoothing effect of the posterior limit the resolution.)"
    )


if __name__ == "__main__":
    main()
