"""Dynamic load balancing trace (Figure 9 of the paper).

Runs a small parallel MLMCMC job with strongly heterogeneous model run times
(log-normal, as for the tsunami model whose time-step count depends on the
uncertain parameters) and renders the resulting per-process Gantt chart as
ASCII art: ``#`` marks model evaluations, ``o`` burn-in work and ``.`` idle
waiting.  The phonebook's reassignment decisions are listed below the chart.

Run with::

    python examples/load_balancing_demo.py [--static]
"""

from __future__ import annotations

import argparse

from repro import GaussianHierarchyFactory, LogNormalCostModel, ParallelMLMCMCSampler


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--static", action="store_true", help="disable dynamic load balancing")
    parser.add_argument("--ranks", type=int, default=14)
    args = parser.parse_args()

    factory = GaussianHierarchyFactory(dim=2, num_levels=3, subsampling=4)
    cost_model = LogNormalCostModel([0.05, 0.2, 0.8], coefficient_of_variation=0.5)

    sampler = ParallelMLMCMCSampler(
        factory,
        num_samples=[600, 200, 80],
        num_ranks=args.ranks,
        cost_model=cost_model,
        dynamic_load_balancing=not args.static,
        seed=9,
    )
    result = sampler.run()

    print(f"virtual run time : {result.virtual_time:.1f} s")
    print(f"worker utilisation: {result.worker_utilization():.2f}")
    print(f"messages sent     : {result.messages_sent}")
    print()
    print("Per-process timeline ('#' model evaluation, 'o' burn-in, '.' waiting):")
    print(result.trace.render_ascii(width=100))

    if result.rebalance_log:
        print("\nLoad balancer decisions:")
        for time, decision in result.rebalance_log:
            print(
                f"  t = {time:8.1f} s: moved one work group from level "
                f"{decision.source_level} to level {decision.target_level} ({decision.reason})"
            )
    else:
        print("\nNo load-balancing decisions were made.")

    print("\nController level assignments over time:")
    for rank, history in sorted(result.controller_assignments.items()):
        print(f"  rank {rank:3d}: {' -> '.join(str(level) for level in history)}")


if __name__ == "__main__":
    main()
