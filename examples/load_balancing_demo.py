"""Dynamic load balancing trace (Figure 9 of the paper).

Runs the ``example-load-balancing`` scenario: a small parallel MLMCMC job with
strongly heterogeneous model run times (log-normal, as for the tsunami model
whose time-step count depends on the uncertain parameters) and renders the
resulting per-process Gantt chart as ASCII art: ``#`` marks model evaluations,
``o`` burn-in work and ``.`` idle waiting.  The phonebook's reassignment
decisions are listed below the chart.

Run with::

    python examples/load_balancing_demo.py [--static] [--quick] [--out runs/]

(equivalently: ``python -m repro run example-load-balancing``).
"""

from __future__ import annotations

import argparse
from dataclasses import replace

from repro.experiments import get_scenario, run_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--static", action="store_true", help="disable dynamic load balancing")
    parser.add_argument("--ranks", type=int, default=None)
    parser.add_argument("--quick", action="store_true", help="scaled-down smoke tier")
    parser.add_argument("--out", metavar="DIR", default=None, help="write a run manifest")
    args = parser.parse_args()

    spec = get_scenario("example-load-balancing")
    sampler = dict(spec.sampler)
    if args.static:
        sampler["dynamic_load_balancing"] = False
    if args.ranks is not None:
        sampler["num_ranks"] = args.ranks
    spec = replace(spec, sampler=sampler)

    run = run_scenario(spec, quick=args.quick, out_dir=args.out)
    payload = run.payload
    summary = payload["summary"]

    print(f"virtual run time : {summary['virtual_time']:.1f} s")
    print(f"worker utilisation: {summary['worker_utilization']:.2f}")
    print(f"messages sent     : {summary['messages_sent']:.0f}")
    print()
    print("Per-process timeline ('#' model evaluation, 'o' burn-in, '.' waiting):")
    print(payload["gantt"])

    if payload["rebalances"]:
        print("\nLoad balancer decisions:")
        for decision in payload["rebalances"]:
            print(
                f"  t = {decision['time_s']:8.1f} s: moved one work group from level "
                f"{decision['source_level']} to level {decision['target_level']} "
                f"({decision['reason']})"
            )
    else:
        print("\nNo load-balancing decisions were made.")

    print("\nController level assignments over time:")
    for rank, history in payload["controller_assignments"].items():
        print(f"  rank {int(rank):3d}: {' -> '.join(str(level) for level in history)}")
    if run.manifest_path:
        print(f"\nmanifest written to {run.manifest_path}")


if __name__ == "__main__":
    main()
