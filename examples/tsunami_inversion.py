"""Tohoku-like tsunami source inversion (Section 3.2 / 5.2 of the paper).

Runs the ``example-tsunami-inversion`` scenario: infer the location of the
initial sea-surface displacement from the maximum wave height and its arrival
time at two synthetic buoys, using a multilevel hierarchy that combines grid
refinement with the paper's bathymetry treatments (depth-averaged / smoothed /
full).

The default configuration uses small grids so the script runs in a few
minutes; ``--paper-scale`` switches to the paper's Table 2 resolutions
(25 / 79 / 241 cells), which takes hours on a single core.

Run with::

    python examples/tsunami_inversion.py [--paper-scale] [--quick] [--out runs/]

(equivalently: ``python -m repro run example-tsunami-inversion``).
"""

from __future__ import annotations

import argparse
import os
from dataclasses import replace

import numpy as np

#: the paper's per-level sample counts (used with --paper-scale)
PAPER_SAMPLES = [800, 450, 240]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true")
    parser.add_argument("--samples", type=int, nargs="+", default=None,
                        help="samples per level (coarse to fine)")
    parser.add_argument("--quick", action="store_true", help="scaled-down smoke tier")
    parser.add_argument("--out", metavar="DIR", default=None, help="write a run manifest")
    args = parser.parse_args()
    if args.paper_scale:
        # The presets honour this environment knob (see repro.experiments.presets).
        os.environ["REPRO_BENCH_PAPER_SCALE"] = "1"

    from repro.experiments import get_scenario, run_scenario

    spec = get_scenario("example-tsunami-inversion")
    samples = args.samples or (PAPER_SAMPLES if args.paper_scale else None)
    if samples is not None:
        spec = replace(spec, sampler={**spec.sampler, "num_samples": samples})

    run = run_scenario(spec, quick=args.quick, out_dir=args.out)
    payload = run.payload
    factory = run.factory

    print("Model hierarchy (cf. paper Table 2):")
    for level in payload["levels"]:
        print(
            f"  level {level['level']}: cells = {level['num_cells']:4d}, "
            f"h = {level['mesh_width_m'] / 1e3:6.1f} km, limiter = {level['limiter']}, "
            f"bathymetry = {level['bathymetry']}, rho = {level['subsampling_rate']}"
        )

    print("\nSynthetic observations and level-dependent noise (cf. paper Table 1):")
    for row in factory.observation_table():
        sigmas = ", ".join(
            f"l{level}: {row[f'sigma_l{level}']:.2f}" for level in range(factory.num_levels())
        )
        print(f"  observable {row['observable']}: mu = {row['mu']:8.3f}   sigma: {sigmas}")

    print("\nPer-level contributions to the source-location estimate (cf. paper Table 4):")
    for level in payload["levels"]:
        print(
            f"  level {level['level']}: N = {level['num_samples']:5d}, "
            f"E[correction] = ({level['mean'][0]:7.2f}, {level['mean'][1]:7.2f}) km, "
            f"V = ({level['variance'][0]:8.2f}, {level['variance'][1]:8.2f}), "
            f"cumulative mean = ({level['cumulative_mean'][0]:7.2f}, "
            f"{level['cumulative_mean'][1]:7.2f}) km"
        )
    print(f"acceptance rates: {[round(a, 3) for a in payload['acceptance_rates']]}")

    estimate = payload["mean"]
    spread = np.sqrt(payload["levels"][0]["variance"])
    print("\ntrue source location      : (0.0, 0.0) km (reference solution)")
    print(f"multilevel posterior mean : ({estimate[0]:.1f}, {estimate[1]:.1f}) km")
    print(f"posterior spread (level 0): (~{spread[0]:.0f}, ~{spread[1]:.0f}) km")
    print(
        "\n(The posterior is wide: two buoys observing only the peak wave height and "
        "its arrival time constrain the source location weakly, as in the paper's "
        "Figure 13.)"
    )
    if run.manifest_path:
        print(f"\nmanifest written to {run.manifest_path}")


if __name__ == "__main__":
    main()
