"""Tohoku-like tsunami source inversion (Section 3.2 / 5.2 of the paper).

Infers the location of the initial sea-surface displacement from the maximum
wave height and its arrival time at two synthetic buoys, using a multilevel
hierarchy that combines grid refinement with the paper's bathymetry
treatments (depth-averaged / smoothed / full).

The default configuration uses small grids so the script runs in a few
minutes; ``--paper-scale`` switches to the paper's Table 2 resolutions
(25 / 79 / 241 cells) and sample counts (800 / 450 / 240), which takes hours
on a single core.

Run with::

    python examples/tsunami_inversion.py [--paper-scale]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import MLMCMCSampler, TsunamiInverseProblemFactory
from repro.models.tsunami import TsunamiLevelSpec


def build_factory(paper_scale: bool) -> TsunamiInverseProblemFactory:
    if paper_scale:
        return TsunamiInverseProblemFactory()  # paper defaults (Table 1 / Table 2)
    return TsunamiInverseProblemFactory(
        level_specs=(
            TsunamiLevelSpec(0, 16, "constant", False, sigma_heights=0.15, sigma_times=2.5),
            TsunamiLevelSpec(1, 32, "smoothed", True, sigma_heights=0.10, sigma_times=1.5,
                             smoothing_passes=2),
            TsunamiLevelSpec(2, 48, "full", True, sigma_heights=0.10, sigma_times=0.75),
        ),
        end_time=1800.0,
        subsampling_rates=[0, 5, 3],
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--paper-scale", action="store_true")
    parser.add_argument("--samples", type=int, nargs="+", default=None)
    args = parser.parse_args()

    factory = build_factory(args.paper_scale)
    num_samples = args.samples or ([800, 450, 240] if args.paper_scale else [120, 50, 20])

    print("Model hierarchy (cf. paper Table 2):")
    for row in factory.level_summary():
        print(
            f"  level {row['level']}: cells = {row['num_cells']:4d}, "
            f"h = {row['mesh_width_m'] / 1e3:6.1f} km, limiter = {row['limiter']}, "
            f"bathymetry = {row['bathymetry']}, rho = {row['subsampling_rate']}"
        )

    print("\nSynthetic observations and level-dependent noise (cf. paper Table 1):")
    for row in factory.observation_table():
        sigmas = ", ".join(
            f"l{level}: {row[f'sigma_l{level}']:.2f}" for level in range(factory.num_levels())
        )
        print(f"  observable {row['observable']}: mu = {row['mu']:8.3f}   sigma: {sigmas}")

    result = MLMCMCSampler(factory, num_samples=num_samples, seed=2011).run()

    print("\nPer-level contributions to the source-location estimate (cf. paper Table 4):")
    cumulative = result.estimate.cumulative_means()
    for contribution, partial in zip(result.estimate.contributions, cumulative):
        print(
            f"  level {contribution.level}: N = {contribution.num_samples:5d}, "
            f"E[correction] = ({contribution.mean[0]:7.2f}, {contribution.mean[1]:7.2f}) km, "
            f"V = ({contribution.variance[0]:8.2f}, {contribution.variance[1]:8.2f}), "
            f"cumulative mean = ({partial[0]:7.2f}, {partial[1]:7.2f}) km"
        )
    print(f"acceptance rates: {[round(a, 3) for a in result.acceptance_rates]}")

    estimate = result.mean
    print(f"\ntrue source location      : (0.0, 0.0) km (reference solution)")
    print(f"multilevel posterior mean : ({estimate[0]:.1f}, {estimate[1]:.1f}) km")
    spread = np.sqrt(result.estimate.contributions[0].variance)
    print(f"posterior spread (level 0): (~{spread[0]:.0f}, ~{spread[1]:.0f}) km")
    print(
        "\n(The posterior is wide: two buoys observing only the peak wave height and "
        "its arrival time constrain the source location weakly, as in the paper's "
        "Figure 13.)"
    )


if __name__ == "__main__":
    main()
