"""Strong and weak scaling of the parallel MLMCMC scheduler (Figures 11 / 12).

Replays the paper's scaling experiments on the simulated MPI substrate: the
Poisson posterior is replaced by a cheap analytic stand-in (the paper itself
notes that "the particular inverse problem does not affect the algorithm's
communication patterns"), while the per-level evaluation *times* are taken
from the paper's Table 3.  Virtual run times, speed-ups and parallel
efficiencies are reported for a sweep of rank counts.

Run with::

    python examples/scaling_study.py [--ranks 16 32 64 128]
"""

from __future__ import annotations

import argparse

from repro import GaussianHierarchyFactory, LogNormalCostModel
from repro.parallel import POISSON_PAPER_COSTS, strong_scaling_study, weak_scaling_study


def print_table(title: str, rows: list[dict]) -> None:
    print(f"\n{title}")
    header = f"{'ranks':>6s} {'virtual time [s]':>18s} {'speedup':>9s} {'efficiency':>11s} {'utilisation':>12s} {'rebalances':>11s}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['num_ranks']:6d} {row['virtual_time']:18.2f} {row['speedup']:9.2f} "
            f"{row['efficiency']:11.2f} {row['utilization']:12.2f} {row['num_rebalances']:11d}"
        )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--ranks", type=int, nargs="+", default=[16, 32, 64, 128])
    parser.add_argument("--samples", type=int, nargs="+", default=[2000, 500, 200],
                        help="samples per level for the strong-scaling problem")
    args = parser.parse_args()

    # Stand-in posterior with the parameter dimension of the Poisson problem and
    # the paper's measured per-level evaluation times (Table 3), including
    # run-time variability.
    factory = GaussianHierarchyFactory(dim=4, num_levels=3, subsampling=5)
    cost_model = LogNormalCostModel(POISSON_PAPER_COSTS, coefficient_of_variation=0.2)

    strong = strong_scaling_study(
        factory,
        num_samples=args.samples,
        rank_counts=args.ranks,
        cost_model=cost_model,
        burnin=[60, 25, 10],
        seed=0,
    )
    print_table("Strong scaling (fixed problem, cf. paper Fig. 11)", strong.table())

    weak = weak_scaling_study(
        factory,
        base_num_samples=[n // 2 for n in args.samples],
        base_num_ranks=args.ranks[0],
        rank_counts=args.ranks,
        cost_model=cost_model,
        burnin=[60, 25, 10],
        seed=1,
    )
    print_table("Weak scaling (samples ∝ ranks, cf. paper Fig. 12)", weak.table())


if __name__ == "__main__":
    main()
