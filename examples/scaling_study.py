"""Strong and weak scaling of the parallel MLMCMC scheduler (Figures 11 / 12).

Runs the ``example-scaling-study`` scenario: the paper's scaling experiments
on the simulated MPI substrate.  The Poisson posterior is replaced by a cheap
analytic stand-in (the paper itself notes that "the particular inverse problem
does not affect the algorithm's communication patterns"), while the per-level
evaluation *times* are taken from the paper's Table 3.  Virtual run times,
speed-ups and parallel efficiencies are reported for a sweep of rank counts.

Run with::

    python examples/scaling_study.py [--quick] [--out runs/]

(equivalently: ``python -m repro run example-scaling-study``).
"""

from __future__ import annotations

import argparse

from repro.experiments import print_rows, run_scenario


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="scaled-down smoke tier")
    parser.add_argument("--out", metavar="DIR", default=None, help="write a run manifest")
    args = parser.parse_args()

    run = run_scenario("example-scaling-study", quick=args.quick, out_dir=args.out)
    print_rows(
        "Strong scaling (fixed problem, cf. paper Fig. 11)", run.payload["strong"]["rows"]
    )
    print_rows(
        "Weak scaling (samples ∝ ranks, cf. paper Fig. 12)", run.payload["weak"]["rows"]
    )
    if run.manifest_path:
        print(f"\nmanifest written to {run.manifest_path}")


if __name__ == "__main__":
    main()
